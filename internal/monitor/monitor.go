// Package monitor implements the operational monitoring layer of §IV-A:
// a Nagios-style check scheduler with alert transitions, the Lustre
// Health Checker's event coalescing (grouping associated errors from a
// failure into one incident and discriminating hardware from software
// root causes), and DDN-tool-style controller pollers that record
// time-series into an in-memory store.
package monitor

import (
	"fmt"
	"sort"

	"spiderfs/internal/sim"
)

// Level is a check severity.
type Level int

// Severity levels, ordered.
const (
	OK Level = iota
	Warning
	Critical
)

func (l Level) String() string {
	switch l {
	case OK:
		return "OK"
	case Warning:
		return "WARNING"
	case Critical:
		return "CRITICAL"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Status is a check result.
type Status struct {
	Level   Level
	Message string
}

// Check is a periodic probe of one aspect of the system.
type Check struct {
	Name     string
	Interval sim.Time
	Fn       func() Status
}

// Alert records a level transition of a check.
type Alert struct {
	At      sim.Time
	Check   string
	From    Level
	To      Level
	Message string
}

// Scheduler runs checks on their intervals and records level
// transitions as alerts (steady states don't re-alert, as in Nagios).
type Scheduler struct {
	eng    *sim.Engine
	checks []Check
	level  map[string]Level

	Alerts  []Alert
	Runs    uint64
	stopped bool
}

// NewScheduler builds an idle scheduler.
func NewScheduler(eng *sim.Engine) *Scheduler {
	return &Scheduler{eng: eng, level: map[string]Level{}}
}

// Add registers a check. Call before Start.
func (s *Scheduler) Add(c Check) {
	if c.Interval <= 0 || c.Fn == nil || c.Name == "" {
		panic("monitor: invalid check") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	s.checks = append(s.checks, c)
}

// Start begins periodic execution of all registered checks.
func (s *Scheduler) Start() {
	for _, c := range s.checks {
		s.schedule(c)
	}
}

// Stop halts future check executions.
func (s *Scheduler) Stop() { s.stopped = true }

func (s *Scheduler) schedule(c Check) {
	s.eng.After(c.Interval, func() {
		if s.stopped {
			return
		}
		s.Runs++
		st := c.Fn()
		prev := s.level[c.Name]
		if st.Level != prev {
			s.Alerts = append(s.Alerts, Alert{
				At: s.eng.Now(), Check: c.Name, From: prev, To: st.Level, Message: st.Message,
			})
			s.level[c.Name] = st.Level
		}
		s.schedule(c)
	})
}

// CurrentLevel returns a check's last known level.
func (s *Scheduler) CurrentLevel(name string) Level { return s.level[name] }

// WorstLevel returns the highest current severity across checks.
func (s *Scheduler) WorstLevel() Level {
	worst := OK
	for _, l := range s.level {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// EventClass discriminates physical-hardware events from Lustre
// software events — the distinction the OLCF health tooling was built to
// surface (§IV-A: "discriminate between hardware events and Lustre
// software issues").
type EventClass int

// Event classes.
const (
	Hardware EventClass = iota
	Software
)

func (c EventClass) String() string {
	if c == Hardware {
		return "hardware"
	}
	return "software"
}

// Event is one raw log line from a server, controller, or fabric.
type Event struct {
	At        sim.Time
	Component string // e.g. "oss12", "ctrl3", "ib-leaf7"
	Class     EventClass
	Kind      string // e.g. "disk-timeout", "ost-evict", "hca-error"
}

// Incident is a coalesced group of associated events.
type Incident struct {
	Start, End sim.Time
	Events     []Event
	// RootClass is Hardware if any hardware event participates (a
	// hardware fault explains the software fallout, not vice versa).
	RootClass  EventClass
	Components []string
}

// Coalescer groups events arriving within Window of each other into one
// incident.
type Coalescer struct {
	Window sim.Time

	open      *Incident
	Incidents []Incident
}

// NewCoalescer builds a coalescer with the given association window.
func NewCoalescer(window sim.Time) *Coalescer {
	if window <= 0 {
		panic("monitor: coalescer window must be positive") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return &Coalescer{Window: window}
}

// Ingest adds an event; events must arrive in time order.
func (c *Coalescer) Ingest(ev Event) {
	if c.open != nil && ev.At-c.open.End <= c.Window {
		c.open.Events = append(c.open.Events, ev)
		c.open.End = ev.At
		if ev.Class == Hardware {
			c.open.RootClass = Hardware
		}
		return
	}
	c.Close()
	c.open = &Incident{Start: ev.At, End: ev.At, Events: []Event{ev}, RootClass: ev.Class}
}

// Close finalizes any open incident (call at end of stream).
func (c *Coalescer) Close() {
	if c.open == nil {
		return
	}
	seen := map[string]bool{}
	for _, e := range c.open.Events {
		seen[e.Component] = true
	}
	for comp := range seen {
		c.open.Components = append(c.open.Components, comp)
	}
	sort.Strings(c.open.Components)
	c.Incidents = append(c.Incidents, *c.open)
	c.open = nil
}
