package monitor

import (
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func TestSchedulerRunsAndAlertsOnTransitions(t *testing.T) {
	eng := sim.NewEngine()
	s := NewScheduler(eng)
	level := OK
	s.Add(Check{
		Name:     "probe",
		Interval: sim.Second,
		Fn:       func() Status { return Status{level, "msg"} },
	})
	s.Start()
	eng.RunUntil(3 * sim.Second)
	if s.Runs != 3 {
		t.Fatalf("runs = %d, want 3", s.Runs)
	}
	if len(s.Alerts) != 0 {
		t.Fatalf("steady OK produced %d alerts", len(s.Alerts))
	}
	level = Critical
	eng.RunUntil(5 * sim.Second)
	if len(s.Alerts) != 1 {
		t.Fatalf("transition produced %d alerts, want 1", len(s.Alerts))
	}
	a := s.Alerts[0]
	if a.From != OK || a.To != Critical || a.Check != "probe" {
		t.Fatalf("alert = %+v", a)
	}
	if s.CurrentLevel("probe") != Critical || s.WorstLevel() != Critical {
		t.Fatal("level tracking broken")
	}
	level = OK
	eng.RunUntil(7 * sim.Second)
	if len(s.Alerts) != 2 {
		t.Fatalf("recovery not alerted: %d", len(s.Alerts))
	}
	s.Stop()
	runs := s.Runs
	eng.RunUntil(20 * sim.Second)
	if s.Runs != runs {
		t.Fatal("scheduler kept running after Stop")
	}
}

func TestSchedulerRejectsInvalidCheck(t *testing.T) {
	eng := sim.NewEngine()
	s := NewScheduler(eng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Add(Check{Name: "", Interval: sim.Second, Fn: func() Status { return Status{} }})
}

func TestCoalescerGroupsAssociatedEvents(t *testing.T) {
	// The §IV-A scenario: a disk timeout cascades into Lustre errors
	// seconds later; the tooling must present one incident with a
	// hardware root cause.
	c := NewCoalescer(10 * sim.Second)
	c.Ingest(Event{At: 0, Component: "enc3", Class: Hardware, Kind: "disk-timeout"})
	c.Ingest(Event{At: 2 * sim.Second, Component: "ost41", Class: Software, Kind: "ost-io-error"})
	c.Ingest(Event{At: 4 * sim.Second, Component: "oss5", Class: Software, Kind: "client-evict"})
	// A separate, purely software incident well outside the window.
	c.Ingest(Event{At: 60 * sim.Second, Component: "mds0", Class: Software, Kind: "lbug"})
	c.Close()

	if len(c.Incidents) != 2 {
		t.Fatalf("incidents = %d, want 2", len(c.Incidents))
	}
	first := c.Incidents[0]
	if len(first.Events) != 3 {
		t.Fatalf("first incident has %d events", len(first.Events))
	}
	if first.RootClass != Hardware {
		t.Fatalf("first incident root = %v, want hardware", first.RootClass)
	}
	if len(first.Components) != 3 {
		t.Fatalf("components = %v", first.Components)
	}
	second := c.Incidents[1]
	if second.RootClass != Software || len(second.Events) != 1 {
		t.Fatalf("second incident = %+v", second)
	}
}

func TestCoalescerChainExtension(t *testing.T) {
	// Events each within window of the previous extend one incident.
	c := NewCoalescer(5 * sim.Second)
	for i := 0; i < 10; i++ {
		c.Ingest(Event{At: sim.Time(i) * 4 * sim.Second, Component: "x", Class: Software, Kind: "e"})
	}
	c.Close()
	if len(c.Incidents) != 1 {
		t.Fatalf("chained events split into %d incidents", len(c.Incidents))
	}
}

func TestTimeSeriesBounded(t *testing.T) {
	ts := &TimeSeries{Name: "x", Max: 5}
	for i := 0; i < 10; i++ {
		ts.Add(sim.Time(i), float64(i))
	}
	if len(ts.Points) != 5 {
		t.Fatalf("series len = %d", len(ts.Points))
	}
	if ts.Last() != 9 {
		t.Fatalf("last = %f", ts.Last())
	}
	if v := ts.Values(); len(v) != 5 || v[0] != 5 {
		t.Fatalf("values = %v", v)
	}
}

func TestControllerPollerRecordsRates(t *testing.T) {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(1))
	store := NewStore(1000)
	p := NewControllerPoller(eng, store, fs.Ctrls, 100*sim.Millisecond)

	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var file *lustre.File
	fs.Create("data", 4, func(f *lustre.File) { file = f })
	eng.RunUntil(10 * sim.Millisecond)
	client.WriteStream(file, 64<<20, 1<<20, nil)
	eng.RunUntil(2 * sim.Second)
	p.Stop()
	eng.Run()

	if p.Samples < 15 {
		t.Fatalf("poller sampled %d times in 2s at 100ms", p.Samples)
	}
	bps := store.Series("ctrl0.write_bps")
	var peak float64
	for _, pt := range bps.Points {
		if pt.Value > peak {
			peak = pt.Value
		}
	}
	if peak <= 0 {
		t.Fatal("poller never saw write traffic")
	}
	// 64 MiB moved within ~2s: peak sampled rate should be plausible
	// (tens of MB/s at least).
	if peak < 10e6 {
		t.Fatalf("peak write rate %g implausibly low", peak)
	}
	if len(store.Names()) < 3 {
		t.Fatalf("store has %v", store.Names())
	}
}

func TestStandardChecksFire(t *testing.T) {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(2))
	s := NewScheduler(eng)
	for _, c := range StandardChecks(fs) {
		s.Add(c)
	}
	s.Start()
	eng.RunUntil(30 * sim.Second)
	if s.WorstLevel() != OK {
		t.Fatalf("idle system worst level = %v", s.WorstLevel())
	}
	// Push fill over the warning threshold.
	for _, ost := range fs.OSTs {
		ost.SetFill(0.75)
	}
	eng.RunUntil(45 * sim.Second)
	if s.CurrentLevel(fs.Name+".fill") != Warning {
		t.Fatalf("fill check = %v at 75%% full", s.CurrentLevel(fs.Name+".fill"))
	}
	for _, ost := range fs.OSTs {
		ost.SetFill(0.95)
	}
	eng.RunUntil(60 * sim.Second)
	if s.CurrentLevel(fs.Name+".fill") != Critical {
		t.Fatalf("fill check = %v at 95%% full", s.CurrentLevel(fs.Name+".fill"))
	}
	s.Stop()
}

func TestLevelAndClassStrings(t *testing.T) {
	if OK.String() != "OK" || Warning.String() != "WARNING" || Critical.String() != "CRITICAL" {
		t.Fatal("level strings")
	}
	if Hardware.String() != "hardware" || Software.String() != "software" {
		t.Fatal("class strings")
	}
}
