package monitor

import (
	"fmt"
	"sort"

	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
)

// Point is one time-series sample.
type Point struct {
	At    sim.Time
	Value float64
}

// TimeSeries is a bounded in-memory series (the MySQL store of the DDN
// tool, reduced to what the analyses need).
type TimeSeries struct {
	Name   string
	Max    int
	Points []Point
}

// Add appends a sample, evicting the oldest beyond Max.
func (ts *TimeSeries) Add(at sim.Time, v float64) {
	ts.Points = append(ts.Points, Point{At: at, Value: v})
	if ts.Max > 0 && len(ts.Points) > ts.Max {
		ts.Points = ts.Points[len(ts.Points)-ts.Max:]
	}
}

// Last returns the most recent value, or 0 if empty.
func (ts *TimeSeries) Last() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	return ts.Points[len(ts.Points)-1].Value
}

// Values extracts the raw values (for stats / IOSI input).
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.Points))
	for i, p := range ts.Points {
		out[i] = p.Value
	}
	return out
}

// Store holds named series.
type Store struct {
	MaxPerSeries int
	series       map[string]*TimeSeries
}

// NewStore builds a store; maxPerSeries bounds memory (0 = unbounded).
func NewStore(maxPerSeries int) *Store {
	return &Store{MaxPerSeries: maxPerSeries, series: map[string]*TimeSeries{}}
}

// Series returns (creating if needed) the named series.
func (s *Store) Series(name string) *TimeSeries {
	ts, ok := s.series[name]
	if !ok {
		ts = &TimeSeries{Name: name, Max: s.MaxPerSeries}
		s.series[name] = ts
	}
	return ts
}

// Names returns the registered series names, sorted. (The backing
// index is a map; handing callers its iteration order would leak map
// randomization into reports — see the determinism contract.)
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ControllerPoller samples each controller's request counters, inbound
// bytes, and cache dirtiness at a fixed rate — the §IV-A "DDN Tool".
type ControllerPoller struct {
	eng      *sim.Engine
	store    *Store
	ctrls    []*lustre.Controller
	interval sim.Time
	stop     bool
	pending  *sim.Event

	lastRPCs  []uint64
	lastBytes []int64
	Samples   uint64
}

// NewControllerPoller starts polling immediately.
func NewControllerPoller(eng *sim.Engine, store *Store, ctrls []*lustre.Controller, interval sim.Time) *ControllerPoller {
	p := &ControllerPoller{
		eng: eng, store: store, ctrls: ctrls, interval: interval,
		lastRPCs: make([]uint64, len(ctrls)), lastBytes: make([]int64, len(ctrls)),
	}
	p.schedule()
	return p
}

func (p *ControllerPoller) schedule() {
	p.pending = p.eng.After(p.interval, func() {
		if p.stop {
			return
		}
		p.Samples++
		secs := p.interval.Seconds()
		for i, c := range p.ctrls {
			rpcs := c.RPCs
			bytes := c.BytesIn
			p.store.Series(fmt.Sprintf("ctrl%d.rpc_rate", i)).Add(p.eng.Now(), float64(rpcs-p.lastRPCs[i])/secs)
			p.store.Series(fmt.Sprintf("ctrl%d.write_bps", i)).Add(p.eng.Now(), float64(bytes-p.lastBytes[i])/secs)
			p.store.Series(fmt.Sprintf("ctrl%d.dirty_bytes", i)).Add(p.eng.Now(), float64(c.Dirty()))
			p.lastRPCs[i] = rpcs
			p.lastBytes[i] = bytes
		}
		p.schedule()
	})
}

// Stop halts polling and cancels the pending tick.
func (p *ControllerPoller) Stop() {
	p.stop = true
	if p.pending != nil {
		p.pending.Cancel()
		p.pending = nil
	}
}

// StandardChecks returns the check battery OLCF ran against a
// namespace: OST fill (the purge/performance policy), MDS queue depth,
// and controller cache pressure.
func StandardChecks(fs *lustre.FS) []Check {
	return []Check{
		{
			Name:     fs.Name + ".fill",
			Interval: 10 * sim.Second,
			Fn: func() Status {
				f := fs.Fill()
				switch {
				case f > 0.90:
					return Status{Critical, fmt.Sprintf("namespace %.0f%% full", f*100)}
				case f > 0.70:
					return Status{Warning, fmt.Sprintf("namespace %.0f%% full (performance degrades)", f*100)}
				default:
					return Status{OK, "fill nominal"}
				}
			},
		},
		{
			Name:     fs.Name + ".mds",
			Interval: 5 * sim.Second,
			Fn: func() Status {
				q := fs.MDS.QueueLen()
				switch {
				case q > 1000:
					return Status{Critical, fmt.Sprintf("MDS queue %d", q)}
				case q > 100:
					return Status{Warning, fmt.Sprintf("MDS queue %d", q)}
				default:
					return Status{OK, "mds nominal"}
				}
			},
		},
		{
			Name:     fs.Name + ".ctrl-cache",
			Interval: 5 * sim.Second,
			Fn: func() Status {
				worst := 0.0
				for _, c := range fs.Ctrls {
					f := float64(c.Dirty()) / float64(c.Config().CacheBytes)
					if f > worst {
						worst = f
					}
				}
				switch {
				case worst > 0.95:
					return Status{Critical, fmt.Sprintf("controller cache %.0f%% dirty", worst*100)}
				case worst > 0.80:
					return Status{Warning, fmt.Sprintf("controller cache %.0f%% dirty", worst*100)}
				default:
					return Status{OK, "cache nominal"}
				}
			},
		},
	}
}
