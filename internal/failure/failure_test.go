package failure

import (
	"fmt"
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/monitor"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func smallGroups(eng *sim.Engine, n int, seed uint64) []*raid.Group {
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	return raid.BuildGroups(eng, n, raid.Spider2Group(), dcfg, disk.DefaultPopulation(), rng.New(seed))
}

func TestInjectorFailsAndRebuilds(t *testing.T) {
	eng := sim.NewEngine()
	groups := smallGroups(eng, 8, 1)
	cfg := DiskFailureConfig{AnnualFailureRate: 200, ReplaceDelay: sim.Minute} // absurd rate to see action fast
	var events []monitor.Event
	in := NewInjector(eng, groups, cfg, rng.New(2))
	in.Events = func(ev monitor.Event) { events = append(events, ev) }
	in.Start()
	eng.RunUntil(2 * sim.Hour)
	in.Stop()
	eng.Run()
	if in.Failures == 0 {
		t.Fatal("no failures injected in 2h at an extreme rate")
	}
	if in.Rebuilds == 0 {
		t.Fatal("no rebuilds started")
	}
	if len(events) < in.Failures {
		t.Fatalf("events %d < failures %d", len(events), in.Failures)
	}
	for _, ev := range events[:1] {
		if ev.Class != monitor.Hardware || ev.Kind != "disk-failure" {
			t.Fatalf("unexpected first event %+v", ev)
		}
	}
}

// A draw landing on an already-Failed group must resample among live
// groups rather than silently wasting the failure slot: with 3 of 4
// groups pre-failed, every injected failure must land on the survivor.
func TestInjectorResamplesFailedGroups(t *testing.T) {
	eng := sim.NewEngine()
	groups := smallGroups(eng, 4, 7)
	for _, g := range groups[:3] {
		for m := 0; m < 3; m++ { // 3 > parity: group Failed
			g.FailDisk(m)
		}
		if g.State() != raid.Failed {
			t.Fatal("setup: group not failed")
		}
	}
	var events []monitor.Event
	in := NewInjector(eng, groups, DiskFailureConfig{AnnualFailureRate: 300, ReplaceDelay: sim.Minute}, rng.New(8))
	in.Events = func(ev monitor.Event) { events = append(events, ev) }
	in.Start()
	eng.RunUntil(4 * sim.Hour)
	in.Stop()
	eng.Run()
	if in.Failures == 0 {
		t.Fatal("no failures delivered with one live group remaining")
	}
	live := fmt.Sprintf("grp%d-", groups[3].ID)
	for _, ev := range events {
		if ev.Kind != "disk-failure" {
			continue
		}
		if len(ev.Component) < len(live) || ev.Component[:len(live)] != live {
			t.Fatalf("failure injected into dead group: %s", ev.Component)
		}
	}
}

func TestInjectorAllGroupsFailedIsQuiet(t *testing.T) {
	eng := sim.NewEngine()
	groups := smallGroups(eng, 2, 9)
	for _, g := range groups {
		for m := 0; m < 3; m++ {
			g.FailDisk(m)
		}
	}
	in := NewInjector(eng, groups, DiskFailureConfig{AnnualFailureRate: 300, ReplaceDelay: sim.Minute}, rng.New(10))
	in.Start()
	eng.RunUntil(2 * sim.Hour)
	in.Stop()
	eng.Run()
	if in.Failures != 0 {
		t.Fatalf("injected %d failures with no live group", in.Failures)
	}
}

func TestInjectorHooksFire(t *testing.T) {
	eng := sim.NewEngine()
	groups := smallGroups(eng, 2, 11)
	in := NewInjector(eng, groups, DiskFailureConfig{AnnualFailureRate: 400, ReplaceDelay: sim.Minute}, rng.New(12))
	rebuilt := 0
	in.OnRebuildDone = func(*raid.Group) { rebuilt++ }
	failed := 0
	in.OnGroupFailed = func(*raid.Group) { failed++ }
	in.Start()
	eng.RunUntil(12 * sim.Hour)
	in.Stop()
	eng.Run()
	if rebuilt == 0 {
		t.Fatal("OnRebuildDone never fired at an extreme failure rate")
	}
	if failed != in.DataLoss {
		t.Fatalf("OnGroupFailed fired %d times, DataLoss = %d", failed, in.DataLoss)
	}
}

func TestInjectorQuietAtZeroRate(t *testing.T) {
	eng := sim.NewEngine()
	groups := smallGroups(eng, 2, 3)
	in := NewInjector(eng, groups, DiskFailureConfig{AnnualFailureRate: 0}, rng.New(4))
	in.Start()
	eng.RunUntil(24 * sim.Hour)
	if in.Failures != 0 {
		t.Fatalf("zero-rate injector failed %d drives", in.Failures)
	}
}

func TestCableFlapFeedsCoalescer(t *testing.T) {
	eng := sim.NewEngine()
	c := monitor.NewCoalescer(10 * sim.Second)
	CableFlap(eng, c.Ingest, "ib-leaf3-port7", sim.Minute)
	eng.Run()
	c.Close()
	if len(c.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1 coalesced", len(c.Incidents))
	}
	inc := c.Incidents[0]
	if inc.RootClass != monitor.Hardware {
		t.Fatalf("root = %v, want hardware (the cable)", inc.RootClass)
	}
	if len(inc.Events) != 3 {
		t.Fatalf("events = %d", len(inc.Events))
	}
}

// The E8 experiment: under the Spider I 5-enclosure layout the incident
// loses data and the journal; under the corrected 10-enclosure layout
// the same operator actions are survivable.
func TestHumanErrorScenarioLayoutContrast(t *testing.T) {
	spider1 := runWithEnclosureLoss(t, raid.Spider1Layout(), 10)
	spider2 := runWithEnclosureLoss(t, raid.Spider2Layout(), 20)

	if spider1.GroupsFailed == 0 {
		t.Fatal("Spider I layout should lose groups")
	}
	if spider1.JournalLost != 1_000_000 {
		t.Fatalf("journal lost = %d, want 1M (unclean offline)", spider1.JournalLost)
	}
	rate := float64(spider1.FilesRecovered) / float64(spider1.FilesRecovered+spider1.FilesLost)
	if rate < 0.94 || rate > 0.96 {
		t.Fatalf("recovery rate = %.3f, want ~0.95", rate)
	}
	if spider2.GroupsFailed != 0 {
		t.Fatalf("Spider II layout lost %d groups; should tolerate", spider2.GroupsFailed)
	}
}

func runWithEnclosureLoss(t *testing.T, layout raid.EnclosureLayout, seed uint64) IncidentReport {
	t.Helper()
	eng := sim.NewEngine()
	groups := smallGroups(eng, 4, seed)
	for _, g := range groups {
		g.RebuildPause = 30 * sim.Minute
		g.RebuildChunk = 8
	}
	c := raid.NewCouplet(eng, 0, layout, groups)
	g := groups[0]
	g.FailDisk(0)
	repl := disk.New(eng, 999999, g.Disks()[0].Config(), disk.Nominal(), rng.New(seed).Split("r"))
	g.StartRebuild(0, repl, nil)
	c.ControllerFailover()
	c.Journal.Log(1_000_000)
	// The enclosure housing other members of the group drops during the
	// rebuild (the compounding hardware failure of the incident).
	eng.RunFor(sim.Hour)
	c.FailEnclosure(1)
	eng.RunFor(17 * sim.Hour)

	rep := IncidentReport{}
	rep.JournalLost = c.TakeOffline()
	for _, gg := range c.Groups() {
		if gg.State() == raid.Failed {
			rep.GroupsFailed++
		}
	}
	rep.FilesRecovered, rep.FilesLost = c.RecoverFiles(rng.New(seed).Split("rec"), 0.95)
	return rep
}

func TestHumanErrorScenarioBasic(t *testing.T) {
	eng := sim.NewEngine()
	groups := smallGroups(eng, 2, 30)
	for _, g := range groups {
		g.RebuildPause = 30 * sim.Minute
		g.RebuildChunk = 8
	}
	c := raid.NewCouplet(eng, 0, raid.Spider1Layout(), groups)
	rep := HumanErrorScenario(eng, c, 500_000, 0.95, rng.New(31))
	// No enclosure loss in the base scenario: no group fails, but taking
	// the array offline mid-rebuild still drops the journal.
	if rep.GroupsFailed != 0 {
		t.Fatalf("groups failed = %d", rep.GroupsFailed)
	}
	if rep.JournalLost != 500_000 {
		t.Fatalf("journal lost = %d; rebuild should still be running at 18h", rep.JournalLost)
	}
	if rep.FilesRecovered+rep.FilesLost != 500_000 {
		t.Fatalf("recovery accounting: %d + %d", rep.FilesRecovered, rep.FilesLost)
	}
}
