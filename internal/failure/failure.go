// Package failure provides fault injection for the Spider models: a
// Poisson disk-failure process with automatic replace-and-rebuild, the
// cable/HCA error generators that feed the monitoring pipeline, and a
// scripted replay of the 2010 human-error incident from §IV-E.
package failure

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/monitor"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// DiskFailureConfig drives the background failure process.
type DiskFailureConfig struct {
	// AnnualFailureRate per drive (NL-SAS fleets see ~2-4%/yr at scale).
	AnnualFailureRate float64
	// ReplaceDelay models the technician walk time before a spare is
	// inserted and rebuild starts.
	ReplaceDelay sim.Time
}

// DefaultDiskFailures mirrors fleet behaviour.
func DefaultDiskFailures() DiskFailureConfig {
	return DiskFailureConfig{AnnualFailureRate: 0.03, ReplaceDelay: 4 * sim.Hour}
}

// Injector runs failure processes against a set of RAID groups.
type Injector struct {
	eng    *sim.Engine
	groups []*raid.Group
	src    *rng.Source
	cfg    DiskFailureConfig

	// Events receives monitor events for every injected fault (optional).
	Events func(monitor.Event)
	// OnGroupFailed fires when an injected failure transitions a group
	// to Failed (data loss) — the hook the chaos campaign uses to
	// propagate the fault through the failure-domain graph.
	OnGroupFailed func(*raid.Group)
	// OnRebuildDone fires when a replacement drive finishes rebuilding.
	OnRebuildDone func(*raid.Group)

	Failures int
	Rebuilds int
	DataLoss int // groups that transitioned to Failed
	stopped  bool
	pending  *sim.Event
	replID   int
	live     []*raid.Group // scratch for injectOne resampling
}

// NewInjector builds an idle injector; call Start.
func NewInjector(eng *sim.Engine, groups []*raid.Group, cfg DiskFailureConfig, src *rng.Source) *Injector {
	return &Injector{eng: eng, groups: groups, src: src, cfg: cfg}
}

// Start begins the Poisson failure process.
func (in *Injector) Start() {
	in.schedule()
}

// Stop halts the process.
func (in *Injector) Stop() {
	in.stopped = true
	if in.pending != nil {
		in.pending.Cancel()
		in.pending = nil
	}
}

// meanGap returns the expected time between failures across the fleet.
func (in *Injector) meanGap() sim.Time {
	drives := 0
	for _, g := range in.groups {
		drives += g.Config().Width()
	}
	if drives == 0 || in.cfg.AnnualFailureRate <= 0 {
		return 0
	}
	perDrivePerSec := in.cfg.AnnualFailureRate / (365.25 * 24 * 3600)
	fleetRate := perDrivePerSec * float64(drives)
	return sim.FromSeconds(1 / fleetRate)
}

func (in *Injector) schedule() {
	gap := in.meanGap()
	if gap == 0 {
		return
	}
	wait := sim.FromSeconds(in.src.Exp(1 / gap.Seconds()))
	in.pending = in.eng.After(wait, func() {
		if in.stopped {
			return
		}
		in.injectOne()
		in.schedule()
	})
}

func (in *Injector) injectOne() {
	// Sample among live groups only: a draw landing on an already-Failed
	// group must not silently waste the failure slot, or the delivered
	// fleet AFR falls below the configured rate as groups die.
	live := in.live[:0]
	for _, g := range in.groups {
		if g.State() != raid.Failed {
			live = append(live, g)
		}
	}
	in.live = live
	if len(live) == 0 {
		return
	}
	g := live[in.src.Intn(len(live))]
	m := in.src.Intn(g.Config().Width())
	before := g.State()
	st := g.FailDisk(m)
	in.Failures++
	in.emit(monitor.Event{
		At: in.eng.Now(), Component: fmt.Sprintf("grp%d-disk%d", g.ID, m),
		Class: monitor.Hardware, Kind: "disk-failure",
	})
	if st == raid.Failed {
		if before != raid.Failed {
			in.DataLoss++
			in.emit(monitor.Event{
				At: in.eng.Now(), Component: fmt.Sprintf("grp%d", g.ID),
				Class: monitor.Software, Kind: "ost-offline",
			})
			if in.OnGroupFailed != nil {
				in.OnGroupFailed(g)
			}
		}
		return
	}
	// Replace after the walk delay and rebuild.
	in.eng.After(in.cfg.ReplaceDelay, func() {
		if g.State() == raid.Failed || in.stopped {
			return
		}
		dcfg := g.Disks()[m].Config()
		repl := disk.New(in.eng, 1_000_000+in.replID, dcfg, disk.Nominal(),
			in.src.Split(fmt.Sprintf("repl-%d", in.replID)))
		in.replID++
		in.Rebuilds++
		g.StartRebuild(m, repl, func() {
			if in.OnRebuildDone != nil {
				in.OnRebuildDone(g)
			}
		})
	})
}

func (in *Injector) emit(ev monitor.Event) {
	if in.Events != nil {
		in.Events(ev)
	}
}

// CableFlap injects an InfiniBand cable error burst: a hardware event
// followed by the software fallout the coalescer must associate
// (§IV-A's single-cable performance degradation).
func CableFlap(eng *sim.Engine, sink func(monitor.Event), component string, at sim.Time) {
	eng.At(at, func() {
		sink(monitor.Event{At: eng.Now(), Component: component, Class: monitor.Hardware, Kind: "hca-symbol-errors"})
	})
	eng.At(at+2*sim.Second, func() {
		sink(monitor.Event{At: eng.Now(), Component: "lnet", Class: monitor.Software, Kind: "router-timeout"})
	})
	eng.At(at+5*sim.Second, func() {
		sink(monitor.Event{At: eng.Now(), Component: "oss", Class: monitor.Software, Kind: "bulk-resend"})
	})
}

// IncidentReport is the outcome of the replayed 2010 incident.
type IncidentReport struct {
	GroupsFailed   int
	JournalLost    int64
	FilesRecovered int64
	FilesLost      int64
}

// HumanErrorScenario replays §IV-E against the given couplet: a disk is
// replaced (rebuild starts), the controller connection is interrupted
// and fails over (unit returns to production still rebuilding), and
// eighteen (simulated) hours later the array is taken offline while
// still rebuilding, dropping the journal. journalFiles is the metadata
// exposure (over a million files in the real event); recovery proceeds
// at the given success rate (~0.95 achieved over two weeks).
func HumanErrorScenario(eng *sim.Engine, c *raid.Couplet, journalFiles int64, recoveryRate float64, src *rng.Source) IncidentReport {
	groups := c.Groups()
	g := groups[0]
	// A drive is pulled and replaced; rebuild begins.
	g.FailDisk(0)
	repl := disk.New(eng, 999999, g.Disks()[0].Config(), disk.Nominal(), src.Split("incident-repl"))
	g.StartRebuild(0, repl, nil)

	// Controller-enclosure connection interrupted; failover as designed.
	c.ControllerFailover()

	// Production continues against the rebuilding unit: journal entries
	// accumulate.
	c.Journal.Log(journalFiles)
	eng.RunFor(18 * sim.Hour)

	// The array is taken offline while still in rebuild state.
	rep := IncidentReport{}
	rep.JournalLost = c.TakeOffline()
	for _, gg := range groups {
		if gg.State() == raid.Failed {
			rep.GroupsFailed++
		}
	}
	rep.FilesRecovered, rep.FilesLost = c.RecoverFiles(src.Split("recovery"), recoveryRate)
	return rep
}
