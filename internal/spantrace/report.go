package spantrace

import (
	"fmt"
	"sort"
	"strings"

	"spiderfs/internal/sim"
)

// interval is a closed busy window [lo, hi] in sim time.
type interval struct{ lo, hi sim.Time }

// unionSeconds merges the intervals in place (sorting them) and
// returns the total covered time in seconds.
func unionSeconds(ivs []interval) float64 {
	merged := mergeIntervals(ivs)
	var total sim.Time
	for _, iv := range merged {
		total += iv.hi - iv.lo
	}
	return total.Seconds()
}

// mergeIntervals sorts ivs and collapses overlaps. The input slice is
// reused as scratch; the returned slice aliases it.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// subtractSeconds returns the portion of ivs (assumed merged) not
// covered by cover (assumed merged), in seconds.
func subtractSeconds(ivs, cover []interval) float64 {
	var total sim.Time
	ci := 0
	for _, iv := range ivs {
		lo := iv.lo
		for ci < len(cover) && cover[ci].hi <= lo {
			ci++
		}
		j := ci
		for lo < iv.hi {
			if j >= len(cover) || cover[j].lo >= iv.hi {
				total += iv.hi - lo
				break
			}
			if cover[j].lo > lo {
				total += cover[j].lo - lo
			}
			if cover[j].hi >= iv.hi {
				break
			}
			lo = cover[j].hi
			j++
		}
	}
	return total.Seconds()
}

// Rung is one layer of the Lesson-12 waterfall: how many bytes entered
// the layer, how long the layer was busy (union of its span intervals,
// so pipelining does not double-count), and the bandwidth the layer
// delivered while busy. Efficiency is this rung's bandwidth relative
// to the rung below it (the next deeper layer present); values above 1
// mean the layer is not the binding constraint at that boundary.
type Rung struct {
	Layer       Layer
	Spans       int
	Bytes       int64
	BusySeconds float64
	MBps        float64
	Efficiency  float64
}

// Waterfall aggregates spans into the per-layer bandwidth ladder,
// deepest layer first (the paper profiles bottom-up). Bytes are
// counted only on spans that *enter* a layer (root spans or spans
// whose parent sits in a different layer), so same-layer decomposition
// spans (disk seek/rotate, RAID RMW phases, OST flush) do not inflate
// the layer's byte count.
func Waterfall(spans []Span) []Rung {
	layerOf := make(map[SpanID]Layer, len(spans))
	for i := range spans {
		layerOf[spans[i].ID] = spans[i].Layer
	}
	var ivs [numLayers][]interval
	var bytes [numLayers]int64
	var count [numLayers]int
	for i := range spans {
		s := &spans[i]
		if !s.Done() {
			continue
		}
		l := s.Layer
		count[l]++
		if s.End > s.Start {
			ivs[l] = append(ivs[l], interval{s.Start, s.End})
		}
		entry := s.Parent == 0
		if !entry {
			pl, ok := layerOf[s.Parent]
			entry = !ok || pl != l
		}
		if entry {
			bytes[l] += s.Bytes
		}
	}
	var out []Rung
	for li := int(numLayers) - 1; li >= 0; li-- {
		if count[li] == 0 {
			continue
		}
		r := Rung{Layer: Layer(li), Spans: count[li], Bytes: bytes[li]}
		r.BusySeconds = unionSeconds(ivs[li])
		if r.BusySeconds > 0 {
			r.MBps = float64(bytes[li]) / r.BusySeconds / 1e6
		}
		out = append(out, r)
	}
	for i := range out {
		if i == 0 {
			out[i].Efficiency = 1
			continue
		}
		if below := out[i-1].MBps; below > 0 {
			out[i].Efficiency = out[i].MBps / below
		}
	}
	return out
}

// RenderWaterfall formats the ladder as a fixed-width table.
func RenderWaterfall(rungs []Rung) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %12s %10s\n",
		"layer", "spans", "bytes", "busy-s", "MB/s", "vs-below")
	for i, r := range rungs {
		eff := "-"
		if i > 0 {
			eff = fmt.Sprintf("%.0f%%", r.Efficiency*100)
		}
		fmt.Fprintf(&b, "%-8s %8d %12d %12.4f %12.1f %10s\n",
			r.Layer, r.Spans, r.Bytes, r.BusySeconds, r.MBps, eff)
	}
	b.WriteString("(vs-below >100% = layer not binding at that boundary)\n")
	return b.String()
}

// CriticalReport summarizes per-request critical-path extraction:
// for each completed root tree, request time is attributed to the
// deepest layer busy at each instant (clipped to the root window);
// the layer with the largest share bounded that request.
type CriticalReport struct {
	Requests int
	// Bounded[l] counts requests whose dominant layer is l.
	Bounded [NumLayers]int
	// Share[l] is the mean fraction of request time attributed to l.
	Share [NumLayers]float64
}

// CriticalPaths runs the extractor over a span dump. Spans are in
// record order (parents precede children), which the single-pass root
// resolution relies on.
func CriticalPaths(spans []Span) CriticalReport {
	var rep CriticalReport
	idx := make(map[SpanID]int, len(spans))
	for i := range spans {
		idx[spans[i].ID] = i
	}
	rootOf := make([]int, len(spans))
	nTrees := 0
	for i := range spans {
		if spans[i].Parent == 0 {
			rootOf[i] = i
			nTrees++
			continue
		}
		if j, ok := idx[spans[i].Parent]; ok && j < i {
			rootOf[i] = rootOf[j]
		} else {
			rootOf[i] = -1
		}
	}
	if nTrees == 0 {
		return rep
	}
	// Group member indices per root, preserving record order.
	members := make(map[int][]int, nTrees)
	roots := make([]int, 0, nTrees)
	for i := range spans {
		r := rootOf[i]
		if r < 0 {
			continue
		}
		if r == i {
			roots = append(roots, i)
		}
		members[r] = append(members[r], i)
	}
	var sumShare [NumLayers]float64
	for _, r := range roots {
		root := &spans[r]
		if !root.Done() || root.End == root.Start {
			continue
		}
		lo, hi := root.Start, root.End
		total := (hi - lo).Seconds()
		var perLayer [NumLayers][]interval
		for _, i := range members[r] {
			s := &spans[i]
			if !s.Done() || s.End == s.Start {
				continue
			}
			slo, shi := s.Start, s.End
			if slo < lo {
				slo = lo
			}
			if shi > hi {
				shi = hi
			}
			if shi > slo {
				perLayer[s.Layer] = append(perLayer[s.Layer], interval{slo, shi})
			}
		}
		var attr [NumLayers]float64
		var cover []interval
		for l := NumLayers - 1; l >= 0; l-- {
			if len(perLayer[l]) == 0 {
				continue
			}
			u := mergeIntervals(perLayer[l])
			attr[l] = subtractSeconds(u, cover)
			cover = mergeIntervals(append(cover, u...))
		}
		dominant := int(root.Layer)
		best := -1.0
		for l := 0; l < NumLayers; l++ {
			if attr[l] >= best && attr[l] > 0 {
				best = attr[l]
				dominant = l
			}
		}
		rep.Requests++
		rep.Bounded[dominant]++
		for l := 0; l < NumLayers; l++ {
			sumShare[l] += attr[l] / total
		}
	}
	if rep.Requests > 0 {
		for l := 0; l < NumLayers; l++ {
			rep.Share[l] = sumShare[l] / float64(rep.Requests)
		}
	}
	return rep
}

// Top returns up to k layers ordered by bounded-request count
// (descending), ties toward the deeper layer. Layers that bounded
// nothing are omitted.
func (r CriticalReport) Top(k int) []Layer {
	var order []Layer
	for l := NumLayers - 1; l >= 0; l-- {
		if r.Bounded[l] > 0 {
			order = append(order, Layer(l))
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return r.Bounded[order[i]] > r.Bounded[order[j]]
	})
	if len(order) > k {
		order = order[:k]
	}
	return order
}

// RenderCritical formats the critical-path summary.
func RenderCritical(r CriticalReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path over %d sampled requests:\n", r.Requests)
	for _, l := range r.Top(NumLayers) {
		fmt.Fprintf(&b, "  %-8s bounded %4d requests  (mean share %5.1f%%)\n",
			l, r.Bounded[l], r.Share[l]*100)
	}
	return b.String()
}

// OpCount aggregates spans by operation name.
type OpCount struct {
	Op    string
	N     int
	Bytes int64
}

// CountOps tallies spans per op, sorted by op name. The map is used
// for index lookup only; output order comes from the sort.
func CountOps(spans []Span) []OpCount {
	at := make(map[string]int, 16)
	var out []OpCount
	for i := range spans {
		op := spans[i].Op
		j, ok := at[op]
		if !ok {
			j = len(out)
			at[op] = j
			out = append(out, OpCount{Op: op})
		}
		out[j].N++
		out[j].Bytes += spans[i].Bytes
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// RenderFlame renders up to maxRoots completed request trees as an
// indented text flame view: one line per span, offset/duration bars
// scaled to the root window.
func RenderFlame(spans []Span, maxRoots int) string {
	idx := make(map[SpanID]int, len(spans))
	for i := range spans {
		idx[spans[i].ID] = i
	}
	children := make([][]int, len(spans))
	var roots []int
	for i := range spans {
		p := spans[i].Parent
		if p == 0 {
			if spans[i].Done() {
				roots = append(roots, i)
			}
			continue
		}
		if j, ok := idx[p]; ok {
			children[j] = append(children[j], i)
		}
	}
	if len(roots) > maxRoots {
		roots = roots[:maxRoots]
	}
	var b strings.Builder
	const barW = 32
	for _, r := range roots {
		lo, hi := spans[r].Start, spans[r].End
		span := float64(hi - lo)
		var walk func(i, depth int)
		walk = func(i, depth int) {
			s := &spans[i]
			bar := [barW]byte{}
			for k := range bar {
				bar[k] = '.'
			}
			if span > 0 && s.Done() {
				from := int(float64(s.Start-lo) / span * barW)
				to := int(float64(s.End-lo)/span*barW) + 1
				if from < 0 {
					from = 0
				}
				if to > barW {
					to = barW
				}
				for k := from; k < to; k++ {
					bar[k] = '#'
				}
			}
			detail := s.Detail
			if detail != "" {
				detail = "  " + detail
			}
			fmt.Fprintf(&b, "  |%s| %s[%s] %-14s %9d B  %v%s\n",
				bar[:], strings.Repeat("  ", depth), s.Layer, s.Op, s.Bytes, s.Duration(), detail)
			for _, c := range children[i] {
				walk(c, depth+1)
			}
		}
		fmt.Fprintf(&b, "request %s %s @ %v (%v)\n",
			spans[r].Layer, spans[r].Op, spans[r].Start, spans[r].Duration())
		walk(r, 0)
	}
	return b.String()
}
