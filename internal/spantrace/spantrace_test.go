package spantrace

import (
	"strings"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func newBound(every int) (*Tracer, *sim.Engine) {
	eng := sim.NewEngine()
	tr := New(rng.New(11), every)
	tr.Bind(eng)
	return tr, eng
}

// Every method must be a no-op on a nil tracer: instrumented layers
// call them unconditionally.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Bind(sim.NewEngine())
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if id := tr.SampleRoot(Client, "rpc", 1); id != 0 {
		t.Fatalf("SampleRoot on nil = %d", id)
	}
	if id := tr.Begin(Disk, "x", 5, 1); id != 0 {
		t.Fatalf("Begin on nil = %d", id)
	}
	tr.End(5)
	tr.Annotate(5, "d")
	tr.Mark(Fabric, "hop", 5, 0, "")
	tr.Range(Disk, "seek", 5, 0, 1, 0)
	if tr.Cur() != 0 || tr.Swap(7) != 0 || tr.Len() != 0 || tr.Open() != 0 || tr.Sampled() != 0 {
		t.Fatal("nil tracer leaked state")
	}
	if tr.Spans() != nil || tr.SampleEvery() != 0 {
		t.Fatal("nil tracer returned data")
	}
}

func TestDisabledAndUnbound(t *testing.T) {
	// every=0 disables sampling entirely.
	tr, _ := newBound(0)
	if tr.Enabled() {
		t.Fatal("every=0 tracer reports enabled")
	}
	for i := 0; i < 10; i++ {
		if id := tr.SampleRoot(Client, "rpc", 1); id != 0 {
			t.Fatalf("disabled tracer sampled a root: %d", id)
		}
	}
	// Unbound tracer (no engine yet) must not record either.
	ub := New(rng.New(3), 1)
	if ub.Enabled() {
		t.Fatal("unbound tracer reports enabled")
	}
	if id := ub.SampleRoot(Client, "rpc", 1); id != 0 {
		t.Fatalf("unbound tracer sampled a root: %d", id)
	}
	if id := ub.Begin(Disk, "x", 9, 1); id != 0 {
		t.Fatalf("unbound Begin recorded: %d", id)
	}
}

func TestSamplingCadence(t *testing.T) {
	tr, _ := newBound(4)
	roots := 0
	for i := 0; i < 16; i++ {
		if tr.SampleRoot(Client, "rpc", 1) != 0 {
			roots++
		}
	}
	if roots != 4 {
		t.Fatalf("1-in-4 over 16 calls sampled %d roots, want 4", roots)
	}
	if tr.Sampled() != 4 {
		t.Fatalf("Sampled() = %d, want 4", tr.Sampled())
	}
}

// Unsampled contexts must propagate: children of 0 and NoSpan are
// never recorded, so a whole unsampled tree costs nothing.
func TestNoSpanGating(t *testing.T) {
	tr, _ := newBound(1)
	if id := tr.Begin(OSS, "svc", 0, 1); id != 0 {
		t.Fatalf("Begin under 0 recorded %d", id)
	}
	if id := tr.Begin(OSS, "svc", NoSpan, 1); id != 0 {
		t.Fatalf("Begin under NoSpan recorded %d", id)
	}
	tr.Mark(Fabric, "hop", NoSpan, 0, "")
	tr.Range(Disk, "seek", NoSpan, 0, 1, 0)
	tr.End(NoSpan)
	if tr.Len() != 0 {
		t.Fatalf("unsampled context recorded %d spans", tr.Len())
	}
}

func TestSpanLifecycleAndSwap(t *testing.T) {
	tr, eng := newBound(1)
	root := tr.SampleRoot(Client, "rpc-write", 100)
	if root == 0 || root == NoSpan {
		t.Fatalf("root = %d", root)
	}
	old := tr.Swap(root)
	if old != 0 || tr.Cur() != root {
		t.Fatalf("swap: old=%d cur=%d", old, tr.Cur())
	}
	child := tr.Begin(Disk, "disk-write", tr.Cur(), 100)
	tr.Annotate(child, "lun3")
	eng.After(sim.Millisecond, func() {
		tr.End(child)
		tr.End(root)
	})
	eng.Run()
	tr.Swap(old)
	if tr.Open() != 0 {
		t.Fatalf("%d spans left open", tr.Open())
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[1].Parent != root || spans[1].Detail != "lun3" {
		t.Fatalf("child span wrong: %+v", spans[1])
	}
	if spans[0].Duration() != sim.Millisecond || !spans[0].Done() {
		t.Fatalf("root duration %v", spans[0].Duration())
	}
	// Annotate after close must be a no-op.
	tr.Annotate(child, "late")
	if tr.Spans()[1].Detail != "lun3" {
		t.Fatal("Annotate mutated a closed span")
	}
}

// Same seed, same call sequence → byte-identical span streams. The
// IDs come from the tracer's own rng, the sampling from a counter, so
// nothing varies across reruns.
func TestTracerDeterministic(t *testing.T) {
	run := func() []Span {
		tr, eng := newBound(2)
		for i := 0; i < 8; i++ {
			root := tr.SampleRoot(Client, "rpc", int64(i))
			if root == 0 {
				continue
			}
			c := tr.Begin(Disk, "disk", root, int64(i))
			eng.After(sim.Time(i+1)*sim.Microsecond, func() {
				tr.End(c)
				tr.End(root)
			})
		}
		eng.Run()
		return tr.Spans()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// Synthetic waterfall: bytes count only at layer entry, busy time is
// the per-layer interval union, and rungs come out deepest-first.
func TestWaterfallSynthetic(t *testing.T) {
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Millisecond }
	spans := []Span{
		{ID: 1, Parent: 0, Layer: Client, Op: "rpc", Start: 0, End: ms(10), Bytes: 100},
		// Two overlapping disk spans entering from client: union 0..8.
		{ID: 2, Parent: 1, Layer: Disk, Op: "d1", Start: 0, End: ms(6), Bytes: 60},
		{ID: 3, Parent: 1, Layer: Disk, Op: "d2", Start: ms(4), End: ms(8), Bytes: 40},
		// Same-layer decomposition: bytes must NOT count again.
		{ID: 4, Parent: 2, Layer: Disk, Op: "seek", Start: 0, End: ms(1), Bytes: 60},
		// Open span: skipped entirely.
		{ID: 5, Parent: 1, Layer: OSS, Op: "svc", Start: 0, End: -1, Bytes: 100},
	}
	rungs := Waterfall(spans)
	if len(rungs) != 2 {
		t.Fatalf("got %d rungs, want 2 (open OSS span must be skipped): %+v", len(rungs), rungs)
	}
	d, c := rungs[0], rungs[1]
	if d.Layer != Disk || c.Layer != Client {
		t.Fatalf("rung order wrong: %v then %v (want disk then client)", d.Layer, c.Layer)
	}
	if d.Bytes != 100 {
		t.Fatalf("disk bytes %d, want 100 (entry spans only)", d.Bytes)
	}
	if d.Spans != 3 {
		t.Fatalf("disk span count %d, want 3", d.Spans)
	}
	if d.BusySeconds != 0.008 {
		t.Fatalf("disk busy %v, want 0.008 (interval union)", d.BusySeconds)
	}
	if c.BusySeconds != 0.010 || c.Bytes != 100 {
		t.Fatalf("client rung: %+v", c)
	}
	// Client moved the same bytes over more time: efficiency 0.8.
	if got := c.Efficiency; got < 0.79 || got > 0.81 {
		t.Fatalf("client vs disk efficiency %v, want 0.8", got)
	}
	out := RenderWaterfall(rungs)
	if !strings.Contains(out, "disk") || !strings.Contains(out, "80%") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// Synthetic critical paths: attribution goes to the deepest busy
// layer at each instant, clipped to the root window.
func TestCriticalPathsSynthetic(t *testing.T) {
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Millisecond }
	spans := []Span{
		// Request 1: disk busy 6 of 10ms, fabric the other 4 → disk-bound.
		{ID: 1, Parent: 0, Layer: Client, Op: "rpc", Start: 0, End: ms(10), Bytes: 1},
		{ID: 2, Parent: 1, Layer: Fabric, Op: "send", Start: 0, End: ms(10), Bytes: 1},
		{ID: 3, Parent: 2, Layer: Disk, Op: "d", Start: ms(4), End: ms(10), Bytes: 1},
		// Request 2: fabric covers everything, disk a sliver → fabric-bound.
		{ID: 4, Parent: 0, Layer: Client, Op: "rpc", Start: ms(20), End: ms(30), Bytes: 1},
		{ID: 5, Parent: 4, Layer: Fabric, Op: "send", Start: ms(20), End: ms(30), Bytes: 1},
		{ID: 6, Parent: 5, Layer: Disk, Op: "d", Start: ms(20), End: ms(21), Bytes: 1},
	}
	rep := CriticalPaths(spans)
	if rep.Requests != 2 {
		t.Fatalf("requests %d, want 2", rep.Requests)
	}
	if rep.Bounded[Disk] != 1 || rep.Bounded[Fabric] != 1 {
		t.Fatalf("bounded: disk %d fabric %d, want 1 and 1 (%+v)",
			rep.Bounded[Disk], rep.Bounded[Fabric], rep)
	}
	// Client is fully shadowed by deeper layers in both requests.
	if rep.Share[Client] != 0 {
		t.Fatalf("client share %v, want 0 (fully covered below)", rep.Share[Client])
	}
	// Request 1: disk 0.6; request 2: disk 0.1 → mean 0.35.
	if got := rep.Share[Disk]; got < 0.34 || got > 0.36 {
		t.Fatalf("disk share %v, want 0.35", got)
	}
	top := rep.Top(1)
	if len(top) != 1 || top[0] != Disk {
		t.Fatalf("Top(1) = %v, want [disk] (tie resolves deeper)", top)
	}
	if !strings.Contains(RenderCritical(rep), "critical path over 2") {
		t.Fatal("render missing header")
	}
}

func TestCountOps(t *testing.T) {
	spans := []Span{
		{ID: 1, Op: "hop"},
		{ID: 2, Op: "send", Bytes: 10},
		{ID: 3, Op: "hop", Bytes: 5},
	}
	ops := CountOps(spans)
	if len(ops) != 2 || ops[0].Op != "hop" || ops[0].N != 2 || ops[0].Bytes != 5 ||
		ops[1].Op != "send" || ops[1].Bytes != 10 {
		t.Fatalf("CountOps = %+v", ops)
	}
}

func TestRenderFlame(t *testing.T) {
	ms := func(n int) sim.Time { return sim.Time(n) * sim.Millisecond }
	spans := []Span{
		{ID: 1, Parent: 0, Layer: Client, Op: "rpc", Start: 0, End: ms(4), Bytes: 8},
		{ID: 2, Parent: 1, Layer: Disk, Op: "disk-write", Start: ms(1), End: ms(3), Bytes: 8, Detail: "lun0"},
	}
	out := RenderFlame(spans, 5)
	if !strings.Contains(out, "rpc") || !strings.Contains(out, "disk-write") || !strings.Contains(out, "lun0") {
		t.Fatalf("flame render missing spans:\n%s", out)
	}
}

// The per-span recording cost the overhead budget rides on.
func BenchmarkRecordSpan(b *testing.B) {
	tr, _ := newBound(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.SampleRoot(Client, "rpc", 1)
		c := tr.Begin(Disk, "disk", root, 1)
		tr.End(c)
		tr.End(root)
	}
}

// The sampling fast path: the 63-in-64 requests that are not traced.
func BenchmarkSampleMiss(b *testing.B) {
	tr, _ := newBound(1 << 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.SampleRoot(Client, "rpc", 1) != 0 {
			b.Fatal("unexpected sample")
		}
	}
}
