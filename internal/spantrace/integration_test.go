package spantrace_test

import (
	"bytes"
	"testing"

	"spiderfs/internal/chaos"
	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
	"spiderfs/internal/trace"
)

// runCampaign runs a short chaos campaign with the engine's event
// trace armed, optionally with a sampling tracer attached.
func runCampaign(seed uint64, every int) (*chaos.Report, *spantrace.Tracer) {
	cfg := chaos.QuickConfig(seed)
	cfg.Duration = 6 * sim.Hour
	cfg.TraceEvents = true
	var tr *spantrace.Tracer
	if every > 0 {
		tr = spantrace.New(rng.New(99), every)
		cfg.Tracer = tr
	}
	return chaos.Run(cfg), tr
}

// The observer-effect contract: a traced run of the same seed fires
// the exact same events at the exact same times as an untraced run.
// The engine's event-trace fingerprint covers every (time, seq) fired,
// so any event the tracer added, removed, or reordered fails this.
func TestTracingHasNoObserverEffect(t *testing.T) {
	base, _ := runCampaign(2026, 0)
	traced, tr := runCampaign(2026, 8)
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing; the comparison is vacuous")
	}
	if base.TraceEvents != traced.TraceEvents {
		t.Fatalf("event counts diverge: untraced %d, traced %d", base.TraceEvents, traced.TraceEvents)
	}
	if base.EventTrace != traced.EventTrace {
		t.Fatalf("event-trace fingerprints diverge: untraced %#x, traced %#x",
			base.EventTrace, traced.EventTrace)
	}
	if base.Availability != traced.Availability {
		t.Fatalf("availability diverges: untraced %v, traced %v", base.Availability, traced.Availability)
	}
}

// Two traced runs of the same seed must be bit-identical: same engine
// fingerprint, same spans (IDs included — they come from the tracer's
// own seeded rng), same exported JSON.
func TestTracedDoubleRunBitIdentical(t *testing.T) {
	r1, t1 := runCampaign(7, 4)
	r2, t2 := runCampaign(7, 4)
	if r1.EventTrace != r2.EventTrace || r1.TraceEvents != r2.TraceEvents {
		t.Fatalf("engine fingerprints diverge: %#x/%d vs %#x/%d",
			r1.EventTrace, r1.TraceEvents, r2.EventTrace, r2.TraceEvents)
	}
	a, b := t1.Spans(), t2.Spans()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("span counts: %d vs %d (want equal, nonzero)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	var buf1, buf2 bytes.Buffer
	if err := trace.WriteSpans(&buf1, a); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&buf2, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("exported span JSON differs between identical runs")
	}
}

// Fault visibility: during an injected OSS outage a traced client's
// stalled RPCs must surface as rpc-retry marks, and after recovery the
// same workload must produce none.
func TestRetrySpansAppearDuringOSSOutage(t *testing.T) {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(5))
	tr := spantrace.New(rng.New(6), 1)
	fs.SetTracer(tr)

	cl := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	cl.Tracer = tr
	cl.RPCTimeout = 5 * sim.Second
	var file *lustre.File
	fs.CreateOn("trace/out", []int{0}, func(f *lustre.File) { file = f })
	eng.Run()

	retries := func() int {
		n := 0
		for _, s := range tr.Spans() {
			if s.Op == "rpc-retry" {
				n++
			}
		}
		return n
	}

	// Non-imperative recovery stalls clients for minutes; a 5s RPC
	// watchdog fires repeatedly across the outage.
	if err := lustre.FailOSS(fs, 0, lustre.DefaultRecovery(false), nil); err != nil {
		t.Fatal(err)
	}
	cl.WriteStream(file, 8<<20, 1<<20, nil)
	eng.Run()
	during := retries()
	if during == 0 {
		t.Fatal("no rpc-retry spans recorded during the OSS outage")
	}
	if cl.RPCRetries == 0 {
		t.Fatal("client counted no retries; the workload never stalled")
	}

	// Recovered: the same stream must complete without a single retry.
	cl.WriteStream(file, 8<<20, 1<<20, nil)
	eng.Run()
	if after := retries(); after != during {
		t.Fatalf("rpc-retry spans grew after recovery: %d -> %d", during, after)
	}
}
