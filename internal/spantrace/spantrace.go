// Package spantrace is the simulator's distributed-tracing plane: a
// deterministic, sampling-based span recorder for following one I/O
// request end to end through client RPC, fabric, OSS, OST stack, RAID
// group, and disk mechanics (the paper's Lesson 12 ladder, §V, and the
// per-request visibility §VI-B's IOSI lacked).
//
// Observer-effect contract: attaching a Tracer must not change the
// simulation. The tracer never schedules engine events, never draws
// from a simulation rng stream (span IDs come from its own dedicated
// source), and samples by request counter rather than by coin flip, so
// an untraced and a traced run of the same seed produce identical
// sim.TraceHash fingerprints. Instrumentation sites may wrap completion
// callbacks, but the wrapped callback schedules exactly the events the
// bare one would.
//
// All Tracer methods are nil-receiver safe: instrumented packages call
// them unconditionally and pay only a nil check when tracing is off.
package spantrace

import (
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// SpanID identifies one recorded span. 0 means "no span" (unsampled or
// tracing off); NoSpan marks a request context that was considered and
// deliberately not sampled, so deeper layers neither attach child spans
// nor self-sample a fresh root for it.
type SpanID uint64

// NoSpan is the claimed-but-unsampled sentinel (see SpanID).
const NoSpan SpanID = ^SpanID(0)

// Layer is the stack position a span belongs to, ordered shallow to
// deep. The critical-path extractor resolves attribution ties toward
// the deeper layer (the paper profiles bottom-up for the same reason:
// the deepest busy layer is the one that bounded the request).
type Layer uint8

const (
	Client Layer = iota // RPC issue/retry, pipeline windowing
	Fabric              // torus hops, LNET router, SAN links
	OSS                 // obdfilter CPU service
	OST                 // write-back cache admission, flush, journal
	RAID                // parity RMW, degraded reads, rebuild
	Disk                // seek, rotation, transfer, tail latency
	numLayers
)

// NumLayers is the number of distinct layers (for report arrays).
const NumLayers = int(numLayers)

func (l Layer) String() string {
	switch l {
	case Client:
		return "client"
	case Fabric:
		return "fabric"
	case OSS:
		return "oss"
	case OST:
		return "ost"
	case RAID:
		return "raid"
	case Disk:
		return "disk"
	}
	return "layer?"
}

// Span is one recorded interval (or instant, for marks) in a sampled
// request tree. Parent is 0 for roots. End is -1 while the span is
// open; reports skip spans that never closed.
type Span struct {
	ID     SpanID
	Parent SpanID
	Layer  Layer
	Op     string
	Start  sim.Time
	End    sim.Time
	Bytes  int64
	Detail string
}

// Done reports whether the span was closed.
func (s Span) Done() bool { return s.End >= s.Start }

// Duration is End-Start for closed spans, 0 otherwise.
func (s Span) Duration() sim.Time {
	if !s.Done() {
		return 0
	}
	return s.End - s.Start
}

// Tracer records sampled request trees. Create with New, attach a
// clock with Bind (center.AttachTracer and lustre.FS.SetTracer do this
// for you), and hand it to the instrumented layers. One Tracer serves
// exactly one engine/run.
type Tracer struct {
	eng   *sim.Engine
	src   *rng.Source
	every uint64
	count uint64
	cur   SpanID
	spans []Span
	// open maps still-open span IDs to their index in spans. Lookup
	// and delete only — never iterated, so map order cannot leak.
	open map[SpanID]int
}

// New builds a tracer sampling 1 request in every (0 disables
// sampling entirely). src must be a dedicated source — the tracer
// draws span IDs from it, and sharing a simulation stream would
// violate the observer-effect contract. The tracer is inert until
// Bind attaches the engine whose clock timestamps spans.
func New(src *rng.Source, every int) *Tracer {
	if every < 0 {
		every = 0
	}
	return &Tracer{src: src, every: uint64(every), open: make(map[SpanID]int)}
}

// Bind attaches the engine clock. Safe to call repeatedly with the
// same engine; spans recorded before Bind are impossible (SampleRoot
// and Begin return 0 while unbound).
func (t *Tracer) Bind(eng *sim.Engine) {
	if t != nil {
		t.eng = eng
	}
}

// Enabled reports whether this tracer can record anything at all.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 && t.eng != nil }

// SampleEvery returns the configured 1-in-N rate (0 = off).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

func (t *Tracer) newID() SpanID {
	id := SpanID(t.src.Uint64())
	for id == 0 || id == NoSpan {
		id = SpanID(t.src.Uint64())
	}
	return id
}

func (t *Tracer) record(layer Layer, op string, parent SpanID, bytes int64) SpanID {
	id := t.newID()
	t.open[id] = len(t.spans)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Layer: layer, Op: op,
		Start: t.eng.Now(), End: -1, Bytes: bytes,
	})
	return id
}

// SampleRoot applies the 1-in-N sampling decision and, when it hits,
// opens a root span. The decision is counter-based (every N-th call),
// not random, so it consumes no randomness and is identical across
// reruns. Returns 0 when the request is not sampled.
func (t *Tracer) SampleRoot(layer Layer, op string, bytes int64) SpanID {
	if !t.Enabled() {
		return 0
	}
	t.count++
	if t.count%t.every != 0 {
		return 0
	}
	return t.record(layer, op, 0, bytes)
}

// Begin opens a child span under parent. Unsampled contexts (parent 0
// or NoSpan) propagate: the child is not recorded and Begin returns 0.
func (t *Tracer) Begin(layer Layer, op string, parent SpanID, bytes int64) SpanID {
	if t == nil || t.eng == nil || parent == 0 || parent == NoSpan {
		return 0
	}
	return t.record(layer, op, parent, bytes)
}

// End closes an open span at the current sim time. No-op for 0/NoSpan
// or already-closed IDs.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 || id == NoSpan {
		return
	}
	if i, ok := t.open[id]; ok {
		delete(t.open, id)
		t.spans[i].End = t.eng.Now()
	}
}

// Annotate attaches a detail string to a still-open span.
func (t *Tracer) Annotate(id SpanID, detail string) {
	if t == nil || id == 0 || id == NoSpan {
		return
	}
	if i, ok := t.open[id]; ok {
		t.spans[i].Detail = detail
	}
}

// Mark records an instantaneous (zero-duration) child span — hop
// traversals, retries, reroutes, drops.
func (t *Tracer) Mark(layer Layer, op string, parent SpanID, bytes int64, detail string) {
	if t == nil || t.eng == nil || parent == 0 || parent == NoSpan {
		return
	}
	now := t.eng.Now()
	t.spans = append(t.spans, Span{
		ID: t.newID(), Parent: parent, Layer: layer, Op: op,
		Start: now, End: now, Bytes: bytes, Detail: detail,
	})
}

// Range records a closed child span with an explicit interval. Disk
// instrumentation uses it to decompose one service retroactively into
// seek/rotate/transfer/tail once the command completes.
func (t *Tracer) Range(layer Layer, op string, parent SpanID, start, end sim.Time, bytes int64) {
	if t == nil || t.eng == nil || parent == 0 || parent == NoSpan || end < start {
		return
	}
	t.spans = append(t.spans, Span{
		ID: t.newID(), Parent: parent, Layer: layer, Op: op,
		Start: start, End: end, Bytes: bytes,
	})
}

// Cur returns the current request context (the span deeper layers
// should parent to), or 0/NoSpan. The simulation is single-threaded,
// so one register suffices: instrumentation brackets each synchronous
// call boundary with old := tr.Swap(ctx); ...; tr.Swap(old), and
// deferred callbacks re-Swap their captured context.
func (t *Tracer) Cur() SpanID {
	if t == nil {
		return 0
	}
	return t.cur
}

// Swap installs p as the current context and returns the previous one.
func (t *Tracer) Swap(p SpanID) SpanID {
	if t == nil {
		return 0
	}
	old := t.cur
	t.cur = p
	return old
}

// Spans returns the recorded spans in record order (parents precede
// children). The slice is the tracer's own backing store; treat it as
// read-only.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Len is the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Open is the number of spans begun but not yet ended.
func (t *Tracer) Open() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Sampled is the number of root spans recorded so far.
func (t *Tracer) Sampled() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.spans {
		if t.spans[i].Parent == 0 {
			n++
		}
	}
	return n
}
