// Package ledger is the tamper-evident operations ledger: a
// hash-chained, append-only record of every operator action, injected
// failure, repair, and scrub escalation the chaos/integrity planes
// emit. Entries are batched into Merkle trees and the batch roots are
// anchored — once per simulated epoch, or earlier when a batch fills —
// into a second hash chain, the off-chain-payload/on-chain-hash shape:
// an auditor that remembers only the anchored root sequence can later
// prove or refute the integrity of the full payload history.
//
// Determinism contract: an entry hash is derived exclusively from the
// chain head, the entry's sequence number, its simulated timestamp,
// and its payload strings — never from wallclock time (which simlint
// forbids in this tree anyway). Two runs of the same campaign
// configuration therefore produce byte-identical root sequences, and
// the campaign fingerprint extends over them; BENCH_ledger.json gates
// the roots exactly.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"spiderfs/internal/sim"
)

// Schema identifies the Export JSON shape.
const Schema = "spiderfs-ledger/1"

// DefaultEpoch is the anchor cadence when Config.Epoch is zero: one
// anchored Merkle root per simulated hour of activity.
const DefaultEpoch = sim.Hour

// Entry is one immutable ledger record. Prev is the hash of the
// preceding entry (the genesis entry chains from the all-zero hash),
// and Hash commits to Prev plus every other field — so mutating any
// payload byte, or splicing the order, breaks the chain.
type Entry struct {
	Seq    uint64   `json:"seq"`
	At     sim.Time `json:"at"`
	Actor  string   `json:"actor"`
	Class  string   `json:"class"`
	Action string   `json:"action"`
	Detail string   `json:"detail,omitempty"`
	Prev   string   `json:"prev"`
	Hash   string   `json:"hash"`
}

// Anchor seals one batch: the Merkle root over the batch's entry
// hashes, chained to the previous anchor. Epoch is the simulated-time
// epoch index the batch belongs to (several anchors may share an epoch
// when MaxBatch splits it; an idle epoch anchors nothing).
type Anchor struct {
	Epoch    int    `json:"epoch"`
	FirstSeq uint64 `json:"first_seq"`
	Entries  int    `json:"entries"`
	Root     string `json:"root"`
	Prev     string `json:"prev"`
	Hash     string `json:"hash"`
}

// RootRef is the minimal trusted memory of one anchored batch — what a
// verifier keeps "on chain" to audit a presented history against.
type RootRef struct {
	Epoch int    `json:"epoch"`
	Root  string `json:"root"`
}

// Config shapes the anchoring cadence.
type Config struct {
	// Epoch is the simulated-time width of one anchoring epoch; an
	// appended entry whose epoch index has moved past the open batch
	// seals that batch first. Zero means DefaultEpoch.
	Epoch sim.Time
	// MaxBatch seals a batch early once it holds this many entries
	// (several anchors then share one epoch). Zero means unbounded.
	MaxBatch int
}

// Export is the portable JSON form of a ledger — the unit the auditor,
// the CLI, and the /v1/sessions/{id}/ledger endpoint exchange.
type Export struct {
	Schema   string   `json:"schema"`
	EpochNS  int64    `json:"epoch_ns"`
	MaxBatch int      `json:"max_batch,omitempty"`
	Entries  []Entry  `json:"entries"`
	Anchors  []Anchor `json:"anchors"`
	Head     string   `json:"head"`
}

// Ledger is the writer. Create with New, feed with Append in
// nondecreasing simulated time, and Close when the run ends to seal
// the final partial epoch.
type Ledger struct {
	cfg        Config
	entries    []Entry
	anchors    []Anchor
	prevEntry  [32]byte
	prevAnchor [32]byte
	leaves     [][32]byte // entry digests of the open batch
	batchFirst uint64
	batchEpoch int
	lastAt     sim.Time
	closed     bool
}

// New builds an empty ledger.
func New(cfg Config) *Ledger {
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultEpoch
	}
	if cfg.MaxBatch < 0 {
		cfg.MaxBatch = 0
	}
	return &Ledger{cfg: cfg}
}

// Append records one operation at simulated time at. Entries must
// arrive in nondecreasing time (everything feeding a ledger runs on
// one engine, so a regression is a caller bug, reported as an error —
// never a panic) and appending after Close is refused the same way.
func (l *Ledger) Append(at sim.Time, actor, class, action, detail string) error {
	if l.closed {
		return fmt.Errorf("ledger: append of %s/%s after close", actor, action)
	}
	if at < 0 {
		return fmt.Errorf("ledger: negative timestamp %v for %s/%s", at, actor, action)
	}
	if len(l.entries) > 0 && at < l.lastAt {
		return fmt.Errorf("ledger: time regression %v -> %v for %s/%s", l.lastAt, at, actor, action)
	}
	epoch := int(at / l.cfg.Epoch)
	if len(l.leaves) > 0 &&
		(epoch != l.batchEpoch || (l.cfg.MaxBatch > 0 && len(l.leaves) >= l.cfg.MaxBatch)) {
		l.seal()
	}
	if len(l.leaves) == 0 {
		l.batchFirst = uint64(len(l.entries))
		l.batchEpoch = epoch
	}
	seq := uint64(len(l.entries))
	d := entryDigest(l.prevEntry, seq, at, actor, class, action, detail)
	l.entries = append(l.entries, Entry{
		Seq: seq, At: at, Actor: actor, Class: class, Action: action, Detail: detail,
		Prev: hexDigest(l.prevEntry), Hash: hexDigest(d),
	})
	l.prevEntry = d
	l.leaves = append(l.leaves, d)
	l.lastAt = at
	return nil
}

// Seal anchors the open batch immediately (an operator-forced anchor;
// the serve plane anchors once per congestion wave this way). Sealing
// an empty batch is a no-op.
func (l *Ledger) Seal() {
	if !l.closed {
		l.seal()
	}
}

// Close seals the final partial batch and freezes the ledger; further
// appends are refused. Close is idempotent.
func (l *Ledger) Close() {
	if l.closed {
		return
	}
	l.seal()
	l.closed = true
}

func (l *Ledger) seal() {
	if len(l.leaves) == 0 {
		return
	}
	root := merkleRoot(l.leaves)
	a := Anchor{
		Epoch: l.batchEpoch, FirstSeq: l.batchFirst, Entries: len(l.leaves),
		Root: hexDigest(root), Prev: hexDigest(l.prevAnchor),
	}
	d := anchorDigest(l.prevAnchor, a.Epoch, a.FirstSeq, a.Entries, root)
	a.Hash = hexDigest(d)
	l.anchors = append(l.anchors, a)
	l.prevAnchor = d
	l.leaves = l.leaves[:0]
}

// Len returns the number of entries appended so far.
func (l *Ledger) Len() int { return len(l.entries) }

// AnchorCount returns the number of sealed batches.
func (l *Ledger) AnchorCount() int { return len(l.anchors) }

// Head returns the anchor-chain head: the hash of the last anchor, or
// the genesis (all-zero) hash while nothing has been sealed.
func (l *Ledger) Head() string { return hexDigest(l.prevAnchor) }

// Roots returns the anchored Merkle roots in seal order.
func (l *Ledger) Roots() []string {
	out := make([]string, len(l.anchors))
	for i, a := range l.anchors {
		out[i] = a.Root
	}
	return out
}

// RootRefs returns the trusted-memory view of the anchor sequence.
func (l *Ledger) RootRefs() []RootRef {
	out := make([]RootRef, len(l.anchors))
	for i, a := range l.anchors {
		out[i] = RootRef{Epoch: a.Epoch, Root: a.Root}
	}
	return out
}

// RootRefs returns the export's anchor sequence as trusted memory —
// what a verifier extracts from a history it has already audited and
// keeps to check later presentations against.
func (e *Export) RootRefs() []RootRef {
	out := make([]RootRef, len(e.Anchors))
	for i, a := range e.Anchors {
		out[i] = RootRef{Epoch: a.Epoch, Root: a.Root}
	}
	return out
}

// Export snapshots the ledger into its portable form. The slices are
// copies; mutating the export never corrupts the writer.
func (l *Ledger) Export() *Export {
	return &Export{
		Schema: Schema, EpochNS: int64(l.cfg.Epoch), MaxBatch: l.cfg.MaxBatch,
		Entries: append([]Entry(nil), l.entries...),
		Anchors: append([]Anchor(nil), l.anchors...),
		Head:    l.Head(),
	}
}

// Resume reopens an exported ledger for appending — the CLI's
// `spidersim ledger append` path, and how a forensics session extends
// an audited history. The export is audited first; a tampered history
// is refused with the first finding as the error.
func Resume(exp *Export) (*Ledger, error) {
	if exp.Schema != Schema {
		return nil, fmt.Errorf("ledger: resume: schema %q, want %q", exp.Schema, Schema)
	}
	if fs := Audit(exp); len(fs) > 0 {
		return nil, fmt.Errorf("ledger: resume refused: %s", fs[0])
	}
	l := New(Config{Epoch: sim.Time(exp.EpochNS), MaxBatch: exp.MaxBatch})
	l.entries = append([]Entry(nil), exp.Entries...)
	l.anchors = append([]Anchor(nil), exp.Anchors...)
	if n := len(exp.Entries); n > 0 {
		d, err := decodeDigest(exp.Entries[n-1].Hash)
		if err != nil {
			return nil, fmt.Errorf("ledger: resume: entry head: %w", err)
		}
		l.prevEntry = d
		l.lastAt = exp.Entries[n-1].At
	}
	if n := len(exp.Anchors); n > 0 {
		d, err := decodeDigest(exp.Anchors[n-1].Hash)
		if err != nil {
			return nil, fmt.Errorf("ledger: resume: anchor head: %w", err)
		}
		l.prevAnchor = d
	}
	return l, nil
}

// Domain-separation tags: entry, anchor, and Merkle-node digests can
// never be confused for one another.
const (
	tagEntry  = 0x01
	tagAnchor = 0x02
	tagNode   = 0x03
)

func entryDigest(prev [32]byte, seq uint64, at sim.Time, actor, class, action, detail string) [32]byte {
	h := sha256.New()
	h.Write([]byte{tagEntry})
	h.Write(prev[:])
	writeU64(h.Write, seq)
	writeU64(h.Write, uint64(at))
	writeString(h.Write, actor)
	writeString(h.Write, class)
	writeString(h.Write, action)
	writeString(h.Write, detail)
	var d [32]byte
	h.Sum(d[:0])
	return d
}

func anchorDigest(prev [32]byte, epoch int, firstSeq uint64, entries int, root [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{tagAnchor})
	h.Write(prev[:])
	writeU64(h.Write, uint64(int64(epoch)))
	writeU64(h.Write, firstSeq)
	writeU64(h.Write, uint64(int64(entries)))
	h.Write(root[:])
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// merkleRoot folds leaf digests into a binary Merkle root; an odd node
// at any level is paired with itself, so a single-entry batch's root is
// node(leaf, leaf) — distinct from the entry hash itself thanks to the
// tagNode domain byte.
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	if len(leaves) == 1 {
		return nodeDigest(leaves[0], leaves[0])
	}
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		next := make([][32]byte, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			j := i + 1
			if j == len(level) {
				j = i
			}
			next = append(next, nodeDigest(level[i], level[j]))
		}
		level = next
	}
	return level[0]
}

func nodeDigest(a, b [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{tagNode})
	h.Write(a[:])
	h.Write(b[:])
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// writeU64 feeds v little-endian into a hash's Write (which never
// returns an error).
func writeU64(w func([]byte) (int, error), v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = w(b[:])
}

// writeString length-prefixes s so adjacent fields cannot alias
// ("ab"+"c" never hashes like "a"+"bc").
func writeString(w func([]byte) (int, error), s string) {
	writeU64(w, uint64(len(s)))
	_, _ = w([]byte(s))
}

func hexDigest(d [32]byte) string { return hex.EncodeToString(d[:]) }

func decodeDigest(s string) ([32]byte, error) {
	var d [32]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(d) {
		return d, fmt.Errorf("ledger: malformed digest %q", s)
	}
	copy(d[:], raw)
	return d, nil
}
