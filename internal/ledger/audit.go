package ledger

import "fmt"

// Finding is one integrity violation the auditor located. Epoch is the
// anchoring epoch the violation falls in (-1 when no epoch can be
// attributed) and Seq the offending entry (-1 for anchor-level
// findings) — enough to pull the incident window out with Replay.
type Finding struct {
	Class  string `json:"class"`
	Epoch  int    `json:"epoch"`
	Seq    int64  `json:"seq"`
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s (epoch %d, seq %d): %s", f.Class, f.Epoch, f.Seq, f.Detail)
}

// Finding classes. Audit emits the internal-consistency classes;
// AuditAgainst emits the trusted-root classes.
const (
	// Internal consistency.
	ClassSequenceGap    = "sequence-gap"    // entry numbering skips or repeats
	ClassChainBreak     = "chain-break"     // entry's Prev is not the predecessor's hash
	ClassEntryMutation  = "entry-mutation"  // stored hash does not match the payload
	ClassMalformed      = "malformed"       // undecodable digest or empty batch
	ClassAnchorBreak    = "anchor-break"    // anchor's Prev is not the predecessor anchor's hash
	ClassAnchorMutation = "anchor-mutation" // stored anchor hash does not match its fields
	ClassCoverageGap    = "coverage-gap"    // anchors skip or overlap entry ranges
	ClassBatchMismatch  = "batch-mismatch"  // recomputed Merkle root differs from the anchor
	ClassTruncation     = "truncation"      // an anchor covers entries the export no longer has
	ClassUnanchoredTail = "unanchored-tail" // entries past the last anchor (ledger not closed)
	ClassHeadMismatch   = "head-mismatch"   // export head is not the last anchor's hash
	// Against trusted roots.
	ClassHistoryTruncation = "history-truncation" // trusted epochs missing from the export
	ClassRootDivergence    = "root-divergence"    // forged history: first root that disagrees
	ClassUntrustedTail     = "untrusted-tail"     // export anchored past the trusted sequence
)

// Audit verifies an export's internal consistency: the entry hash
// chain, the anchor hash chain, anchor coverage of the entry sequence,
// and every batch's Merkle root. A clean closed ledger returns nil
// findings. Findings are ordered entries first, then anchors.
func Audit(exp *Export) []Finding {
	var out []Finding
	epochOf := entryEpochFunc(exp)

	prev := hexDigest([32]byte{})
	for i := range exp.Entries {
		e := &exp.Entries[i]
		seq := int64(i)
		if e.Seq != uint64(i) {
			out = append(out, Finding{ClassSequenceGap, epochOf(i), seq,
				fmt.Sprintf("entry at index %d carries seq %d", i, e.Seq)})
		}
		if e.Prev != prev {
			out = append(out, Finding{ClassChainBreak, epochOf(i), seq,
				fmt.Sprintf("prev %.16s.. does not chain from %.16s..", e.Prev, prev)})
		}
		if pd, err := decodeDigest(e.Prev); err != nil {
			out = append(out, Finding{ClassMalformed, epochOf(i), seq, err.Error()})
		} else if hexDigest(entryDigest(pd, e.Seq, e.At, e.Actor, e.Class, e.Action, e.Detail)) != e.Hash {
			out = append(out, Finding{ClassEntryMutation, epochOf(i), seq,
				fmt.Sprintf("stored hash %.16s.. does not match the recomputed payload digest", e.Hash)})
		}
		prev = e.Hash
	}

	prevAnchor := hexDigest([32]byte{})
	cover := uint64(0)
	for j := range exp.Anchors {
		a := &exp.Anchors[j]
		if a.Prev != prevAnchor {
			out = append(out, Finding{ClassAnchorBreak, a.Epoch, -1,
				fmt.Sprintf("anchor %d prev %.16s.. does not chain from %.16s..", j, a.Prev, prevAnchor)})
		}
		pd, perr := decodeDigest(a.Prev)
		root, rerr := decodeDigest(a.Root)
		if perr != nil || rerr != nil || a.Entries <= 0 {
			out = append(out, Finding{ClassMalformed, a.Epoch, -1,
				fmt.Sprintf("anchor %d: undecodable digest or %d-entry batch", j, a.Entries)})
			prevAnchor = a.Hash
			continue
		}
		if hexDigest(anchorDigest(pd, a.Epoch, a.FirstSeq, a.Entries, root)) != a.Hash {
			out = append(out, Finding{ClassAnchorMutation, a.Epoch, -1,
				fmt.Sprintf("anchor %d stored hash %.16s.. does not match its fields", j, a.Hash)})
		}
		if a.FirstSeq != cover {
			out = append(out, Finding{ClassCoverageGap, a.Epoch, int64(a.FirstSeq),
				fmt.Sprintf("anchor %d starts at seq %d, coverage ended at %d", j, a.FirstSeq, cover)})
		}
		end := a.FirstSeq + uint64(a.Entries)
		if end > uint64(len(exp.Entries)) {
			out = append(out, Finding{ClassTruncation, a.Epoch, int64(len(exp.Entries)),
				fmt.Sprintf("anchor %d covers seqs [%d,%d) but only %d entries remain",
					j, a.FirstSeq, end, len(exp.Entries))})
		} else if got := hexDigest(batchRoot(exp.Entries[a.FirstSeq:end])); got != a.Root {
			out = append(out, Finding{ClassBatchMismatch, a.Epoch, int64(a.FirstSeq),
				fmt.Sprintf("anchor %d root %.16s.. but batch recomputes to %.16s..", j, a.Root, got)})
		}
		if end > cover {
			cover = end
		}
		prevAnchor = a.Hash
	}
	if cover < uint64(len(exp.Entries)) {
		out = append(out, Finding{ClassUnanchoredTail, epochOf(int(cover)), int64(cover),
			fmt.Sprintf("%d entries past the last anchor (ledger not closed?)",
				uint64(len(exp.Entries))-cover)})
	}
	if exp.Head != prevAnchor {
		out = append(out, Finding{ClassHeadMismatch, -1, -1,
			fmt.Sprintf("export head %.16s.. but anchor chain ends at %.16s..", exp.Head, prevAnchor)})
	}
	return out
}

// AuditAgainst verifies an export against a trusted root sequence (the
// verifier's "on-chain" memory, e.g. a prior run's RootRefs). It
// catches what internal consistency alone cannot: a history truncated
// at a batch boundary, and a forged-but-internally-consistent suffix —
// an attacker who rewrote the tail and recomputed every hash still
// cannot reproduce the anchored roots. The first divergent epoch is
// identified; internal findings from Audit are prepended.
func AuditAgainst(exp *Export, trusted []RootRef) []Finding {
	out := Audit(exp)
	for i, tr := range trusted {
		if i >= len(exp.Anchors) {
			out = append(out, Finding{ClassHistoryTruncation, tr.Epoch, -1,
				fmt.Sprintf("trusted roots continue for %d more batches (next epoch %d) but the export's anchors stop",
					len(trusted)-i, tr.Epoch)})
			return out
		}
		a := exp.Anchors[i]
		if a.Root != tr.Root || a.Epoch != tr.Epoch {
			out = append(out, Finding{ClassRootDivergence, tr.Epoch, int64(a.FirstSeq),
				fmt.Sprintf("batch %d: trusted root %.16s.. (epoch %d) vs presented %.16s.. (epoch %d)",
					i, tr.Root, tr.Epoch, a.Root, a.Epoch)})
			return out
		}
	}
	if len(exp.Anchors) > len(trusted) {
		a := exp.Anchors[len(trusted)]
		out = append(out, Finding{ClassUntrustedTail, a.Epoch, int64(a.FirstSeq),
			fmt.Sprintf("%d anchored batches beyond the trusted sequence (first at epoch %d)",
				len(exp.Anchors)-len(trusted), a.Epoch)})
	}
	return out
}

// batchRoot recomputes the Merkle root over a batch's stored entry
// hashes. An undecodable stored hash contributes a zero leaf, which
// can never match an honest root.
func batchRoot(entries []Entry) [32]byte {
	leaves := make([][32]byte, len(entries))
	for i, e := range entries {
		d, err := decodeDigest(e.Hash)
		if err == nil {
			leaves[i] = d
		}
	}
	return merkleRoot(leaves)
}

// entryEpochFunc attributes an entry index to an anchoring epoch:
// through the covering anchor when one exists, else derived from the
// entry's own timestamp.
func entryEpochFunc(exp *Export) func(i int) int {
	return func(i int) int {
		for _, a := range exp.Anchors {
			if uint64(i) >= a.FirstSeq && uint64(i) < a.FirstSeq+uint64(a.Entries) {
				return a.Epoch
			}
		}
		if i >= 0 && i < len(exp.Entries) && exp.EpochNS > 0 {
			return int(int64(exp.Entries[i].At) / exp.EpochNS)
		}
		return -1
	}
}
