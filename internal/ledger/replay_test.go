package ledger

import (
	"strings"
	"testing"

	"spiderfs/internal/sim"
	"spiderfs/internal/trace"
)

func TestReplayJoinsLedgerAndSpans(t *testing.T) {
	l := New(Config{Epoch: sim.Hour})
	mustAppend(t, l, 10*sim.Minute, "rtr3", "hardware", "cable-cut", "")
	mustAppend(t, l, 70*sim.Minute, "rtr3", "operator", "router-repaired", "")
	l.Close()

	spans := []trace.SpanRecord{
		{ID: 1, Layer: "client", Op: "rpc-retry", StartNS: int64(10 * sim.Minute), EndNS: int64(11 * sim.Minute), Bytes: 1 << 20},
		{ID: 2, Layer: "lnet", Op: "reroute", StartNS: int64(12 * sim.Minute), EndNS: -1},
		{ID: 3, Layer: "oss", Op: "write", StartNS: int64(90 * sim.Minute), EndNS: int64(91 * sim.Minute)},
	}

	items := Replay(l.Export(), spans, 0, sim.Hour)
	if len(items) != 3 {
		t.Fatalf("window [0,1h] joined %d items, want 3 (1 ledger + 2 spans): %v", len(items), items)
	}
	// Tie at 10m: the ledger line sorts before the span.
	if items[0].Source != "ledger" || !strings.Contains(items[0].Text, "cable-cut") {
		t.Errorf("item 0 = %+v, want the cable-cut ledger line", items[0])
	}
	if items[1].Source != "span" || !strings.Contains(items[1].Text, "rpc-retry") {
		t.Errorf("item 1 = %+v, want the rpc-retry span", items[1])
	}
	if items[2].Source != "span" || !strings.Contains(items[2].Text, "open") {
		t.Errorf("item 2 = %+v, want the still-open reroute span", items[2])
	}
	for i := 1; i < len(items); i++ {
		if items[i].At < items[i-1].At {
			t.Fatal("replay items not time-sorted")
		}
	}

	// The later window picks up the repair, the write, and the reroute
	// span that is still open across it — but not the closed cut.
	late := Replay(l.Export(), spans, sim.Hour, 2*sim.Hour)
	if len(late) != 3 {
		t.Fatalf("window [1h,2h] joined %d items, want 3: %v", len(late), late)
	}
	if late[0].Source != "span" || !strings.Contains(late[0].Text, "reroute") {
		t.Errorf("late item 0 = %+v, want the still-open reroute span", late[0])
	}
	if late[1].Source != "ledger" || !strings.Contains(late[1].Text, "router-repaired") {
		t.Errorf("late item 1 = %+v, want the repair ledger line", late[1])
	}

	out := RenderReplay(items)
	if !strings.Contains(out, "cable-cut") || !strings.Contains(out, "reroute") {
		t.Errorf("render missing expected lines:\n%s", out)
	}
}
