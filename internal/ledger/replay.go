package ledger

import (
	"fmt"
	"sort"
	"strings"

	"spiderfs/internal/sim"
	"spiderfs/internal/trace"
)

// ReplayItem is one line of a reconstructed incident window: either a
// ledger entry (what operations happened) or a spantrace span (what
// the I/O path did underneath them), merged onto one timeline.
type ReplayItem struct {
	At     sim.Time `json:"at"`
	Source string   `json:"source"` // "ledger" | "span"
	Seq    int64    `json:"seq"`    // ledger seq, or span id
	Text   string   `json:"text"`
}

// Replay joins the ledger's entries with a spantrace dump over the
// simulated-time window [from, to]: every ledger entry stamped inside
// the window, plus every span overlapping it (an open span counts as
// overlapping). The result is time-sorted, ledger lines first on ties,
// so an injected failure reads immediately above the retries and
// reroutes it provoked — the span-by-span incident forensics view.
func Replay(exp *Export, spans []trace.SpanRecord, from, to sim.Time) []ReplayItem {
	var out []ReplayItem
	for _, e := range exp.Entries {
		if e.At < from || e.At > to {
			continue
		}
		text := fmt.Sprintf("%s %s/%s", e.Actor, e.Class, e.Action)
		if e.Detail != "" {
			text += " — " + e.Detail
		}
		out = append(out, ReplayItem{At: e.At, Source: "ledger", Seq: int64(e.Seq), Text: text})
	}
	for _, s := range spans {
		start, end := sim.Time(s.StartNS), sim.Time(s.EndNS)
		if start > to || (s.EndNS >= 0 && end < from) {
			continue
		}
		dur := "open"
		if s.EndNS >= 0 {
			dur = (end - start).String()
		}
		text := fmt.Sprintf("%s %s (%s", s.Layer, s.Op, dur)
		if s.Bytes > 0 {
			text += fmt.Sprintf(", %d B", s.Bytes)
		}
		text += ")"
		if s.Detail != "" {
			text += " — " + s.Detail
		}
		out = append(out, ReplayItem{At: start, Source: "span", Seq: int64(s.ID), Text: text})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Source != out[j].Source {
			return out[i].Source == "ledger"
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// RenderReplay formats a replay for the terminal.
func RenderReplay(items []ReplayItem) string {
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%14v  %-6s  %s\n", it.At, it.Source, it.Text)
	}
	return b.String()
}
