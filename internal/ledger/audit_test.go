package ledger

import (
	"encoding/json"
	"testing"

	"spiderfs/internal/sim"
)

// fixture builds the canonical adversarial-testing ledger: nine
// entries, three per epoch across epochs 0/1/2, closed. Entry seqs
// 0-2 are epoch 0, 3-5 epoch 1, 6-8 epoch 2.
func fixture(t *testing.T) (*Export, []RootRef) {
	t.Helper()
	l := New(Config{Epoch: sim.Hour})
	for e := 0; e < 3; e++ {
		for i := 0; i < 3; i++ {
			at := sim.Time(e)*sim.Hour + sim.Time(i+1)*sim.Minute
			mustAppend(t, l, at, "oss1", "software", "oss-crash", "fixture")
		}
	}
	l.Close()
	if n := l.AnchorCount(); n != 3 {
		t.Fatalf("fixture anchored %d batches, want 3", n)
	}
	return l.Export(), l.RootRefs()
}

// clone deep-copies an export so each tamper starts from pristine state.
func clone(t *testing.T, exp *Export) *Export {
	t.Helper()
	data, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var out Export
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// requireFinding asserts findings contain class at the given epoch.
func requireFinding(t *testing.T, findings []Finding, class string, epoch int) {
	t.Helper()
	for _, f := range findings {
		if f.Class == class && f.Epoch == epoch {
			return
		}
	}
	t.Fatalf("no %s finding at epoch %d; got %v", class, epoch, findings)
}

func TestAuditCleanFixture(t *testing.T) {
	exp, trusted := fixture(t)
	if fs := Audit(exp); len(fs) != 0 {
		t.Fatalf("clean fixture audits dirty: %v", fs)
	}
	if fs := AuditAgainst(exp, trusted); len(fs) != 0 {
		t.Fatalf("clean fixture diverges from its own roots: %v", fs)
	}
}

// Tamper class 1: a single-bit mutation of one entry. Flipping a
// payload bit is caught by the entry digest (the stored hash no longer
// matches); flipping a bit of the stored hash instead is caught by the
// chain, the digest, and the anchored Merkle root. Both localize to
// epoch 1.
func TestAuditDetectsEntryMutation(t *testing.T) {
	exp, _ := fixture(t)
	tampered := clone(t, exp)
	d := []byte(tampered.Entries[4].Detail)
	d[0] ^= 0x01
	tampered.Entries[4].Detail = string(d)
	fs := Audit(tampered)
	requireFinding(t, fs, ClassEntryMutation, 1)

	hashFlip := clone(t, exp)
	h := []byte(hashFlip.Entries[4].Hash)
	if h[0] == '0' {
		h[0] = '1'
	} else {
		h[0] = '0'
	}
	hashFlip.Entries[4].Hash = string(h)
	fs = Audit(hashFlip)
	requireFinding(t, fs, ClassEntryMutation, 1)
	requireFinding(t, fs, ClassChainBreak, 1)
	requireFinding(t, fs, ClassBatchMismatch, 1)
}

// Tamper class 2: deleting an entry. The dense sequence numbering
// breaks at the hole, the hash chain breaks, and the anchors now cover
// more entries than exist.
func TestAuditDetectsEntryDeletion(t *testing.T) {
	exp, _ := fixture(t)
	tampered := clone(t, exp)
	tampered.Entries = append(tampered.Entries[:4], tampered.Entries[5:]...)
	fs := Audit(tampered)
	requireFinding(t, fs, ClassSequenceGap, 1)
	requireFinding(t, fs, ClassChainBreak, 1)
	requireFinding(t, fs, ClassTruncation, 2)
}

// Tamper class 3: chain truncation at a batch boundary — drop epoch
// 2's entries and its anchor and regress the head. Internally the
// prefix is perfectly consistent; only the trusted root sequence
// exposes that history after epoch 1 was destroyed.
func TestAuditDetectsChainTruncation(t *testing.T) {
	exp, trusted := fixture(t)
	tampered := clone(t, exp)
	tampered.Entries = tampered.Entries[:6]
	tampered.Anchors = tampered.Anchors[:2]
	tampered.Head = tampered.Anchors[1].Hash
	if fs := Audit(tampered); len(fs) != 0 {
		t.Fatalf("boundary truncation should be internally consistent, got %v", fs)
	}
	fs := AuditAgainst(tampered, trusted)
	requireFinding(t, fs, ClassHistoryTruncation, 2)
}

// Tamper class 4: batch reorder — swapping two anchors breaks the
// anchor hash chain where the displaced batch lands, and reordering
// entries inside a batch breaks the entry chain and the batch root.
func TestAuditDetectsBatchReorder(t *testing.T) {
	exp, _ := fixture(t)
	tampered := clone(t, exp)
	tampered.Anchors[0], tampered.Anchors[1] = tampered.Anchors[1], tampered.Anchors[0]
	fs := Audit(tampered)
	requireFinding(t, fs, ClassAnchorBreak, 1)

	inBatch := clone(t, exp)
	inBatch.Entries[3], inBatch.Entries[4] = inBatch.Entries[4], inBatch.Entries[3]
	fs = Audit(inBatch)
	requireFinding(t, fs, ClassChainBreak, 1)
	requireFinding(t, fs, ClassBatchMismatch, 1)
}

// Tamper class 5: a forged-but-internally-consistent suffix. The
// attacker keeps epochs 0-1, rewrites epoch 2's history, and
// recomputes every hash and anchor honestly — the forgery passes
// Audit, and only the trusted roots expose the divergence at epoch 2.
func TestAuditDetectsForgedSuffix(t *testing.T) {
	exp, trusted := fixture(t)
	prefix := clone(t, exp)
	prefix.Entries = prefix.Entries[:6]
	prefix.Anchors = prefix.Anchors[:2]
	prefix.Head = prefix.Anchors[1].Hash
	forger, err := Resume(prefix)
	if err != nil {
		t.Fatalf("Resume(prefix): %v", err)
	}
	// Rewrite epoch 2: same cadence, different history.
	for i := 0; i < 3; i++ {
		at := 2*sim.Hour + sim.Time(i+1)*sim.Minute
		mustAppend(t, forger, at, "oss1", "software", "all-quiet", "nothing happened here")
	}
	forger.Close()
	forged := forger.Export()
	if fs := Audit(forged); len(fs) != 0 {
		t.Fatalf("forged suffix should be internally consistent, got %v", fs)
	}
	if len(forged.Anchors) != len(exp.Anchors) {
		t.Fatalf("forgery anchored %d batches, want %d", len(forged.Anchors), len(exp.Anchors))
	}
	fs := AuditAgainst(forged, trusted)
	requireFinding(t, fs, ClassRootDivergence, 2)
}

// An unanchored tail (ledger never closed) is reported, not ignored.
func TestAuditFlagsUnanchoredTail(t *testing.T) {
	l := New(Config{Epoch: sim.Hour})
	mustAppend(t, l, sim.Minute, "a", "c", "k", "")
	mustAppend(t, l, 2*sim.Minute, "a", "c", "k", "")
	// No Close: the open batch is exported unanchored.
	fs := Audit(l.Export())
	requireFinding(t, fs, ClassUnanchoredTail, 0)
}
