package ledger

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spiderfs/internal/sim"
)

// mustAppend keeps the tests honest about Append's error contract.
func mustAppend(t *testing.T, l *Ledger, at sim.Time, actor, class, action, detail string) {
	t.Helper()
	if err := l.Append(at, actor, class, action, detail); err != nil {
		t.Fatalf("Append(%v, %s/%s): %v", at, actor, action, err)
	}
}

func TestChainAndEpochAnchoring(t *testing.T) {
	l := New(Config{Epoch: sim.Hour})
	// Three epochs of activity with an idle epoch (2) in between.
	mustAppend(t, l, 10*sim.Minute, "oss3", "software", "oss-crash", "")
	mustAppend(t, l, 20*sim.Minute, "oss3", "software", "oss-recovered", "")
	mustAppend(t, l, sim.Hour+5*sim.Minute, "rtr7", "hardware", "cable-cut", "")
	mustAppend(t, l, 3*sim.Hour+sim.Minute, "atlas1-grp0", "integrity", "scrub-escalation", "2 stripes beyond parity")
	l.Close()

	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.AnchorCount() != 3 {
		t.Fatalf("AnchorCount = %d, want 3 (idle epoch 2 must anchor nothing)", l.AnchorCount())
	}
	exp := l.Export()
	wantEpochs := []int{0, 1, 3}
	for i, a := range exp.Anchors {
		if a.Epoch != wantEpochs[i] {
			t.Errorf("anchor %d epoch = %d, want %d", i, a.Epoch, wantEpochs[i])
		}
	}
	// Entry chain: seqs dense, each Prev the predecessor's Hash.
	prev := strings.Repeat("0", 64)
	for i, e := range exp.Entries {
		if e.Seq != uint64(i) {
			t.Errorf("entry %d seq = %d", i, e.Seq)
		}
		if e.Prev != prev {
			t.Errorf("entry %d prev does not chain", i)
		}
		prev = e.Hash
	}
	// Anchor chain and coverage.
	aprev := strings.Repeat("0", 64)
	cover := uint64(0)
	for j, a := range exp.Anchors {
		if a.Prev != aprev {
			t.Errorf("anchor %d prev does not chain", j)
		}
		if a.FirstSeq != cover {
			t.Errorf("anchor %d first_seq = %d, want %d", j, a.FirstSeq, cover)
		}
		cover += uint64(a.Entries)
		aprev = a.Hash
	}
	if cover != uint64(len(exp.Entries)) {
		t.Errorf("anchors cover %d of %d entries", cover, len(exp.Entries))
	}
	if exp.Head != aprev {
		t.Errorf("head %s != last anchor hash", exp.Head)
	}
	if fs := Audit(exp); len(fs) != 0 {
		t.Fatalf("clean ledger audits dirty: %v", fs)
	}
}

func TestMaxBatchSplitsAnEpoch(t *testing.T) {
	l := New(Config{Epoch: sim.Hour, MaxBatch: 2})
	for i := 0; i < 5; i++ {
		mustAppend(t, l, sim.Time(i)*sim.Minute, "cmp", "test", "tick", "")
	}
	l.Close()
	if l.AnchorCount() != 3 {
		t.Fatalf("AnchorCount = %d, want 3 (2+2+1 under MaxBatch 2)", l.AnchorCount())
	}
	for _, a := range l.Export().Anchors {
		if a.Epoch != 0 {
			t.Errorf("anchor epoch = %d, want 0 (all entries in one epoch)", a.Epoch)
		}
	}
	if fs := Audit(l.Export()); len(fs) != 0 {
		t.Fatalf("split-epoch ledger audits dirty: %v", fs)
	}
}

func TestAppendRefusals(t *testing.T) {
	l := New(Config{})
	if err := l.Append(-sim.Second, "a", "c", "k", ""); err == nil {
		t.Error("negative timestamp accepted")
	}
	mustAppend(t, l, sim.Hour, "a", "c", "k", "")
	if err := l.Append(sim.Minute, "a", "c", "k", ""); err == nil {
		t.Error("time regression accepted")
	}
	l.Close()
	l.Close() // idempotent
	if err := l.Append(2*sim.Hour, "a", "c", "k", ""); err == nil {
		t.Error("append after close accepted")
	}
	if l.Len() != 1 || l.AnchorCount() != 1 {
		t.Errorf("refused appends leaked state: %d entries, %d anchors", l.Len(), l.AnchorCount())
	}
}

func TestSealForcesAnAnchor(t *testing.T) {
	l := New(Config{Epoch: sim.Hour})
	l.Seal() // empty: no-op
	if l.AnchorCount() != 0 {
		t.Fatal("empty seal anchored something")
	}
	mustAppend(t, l, sim.Minute, "wave", "serve", "wave-drained", "")
	l.Seal()
	mustAppend(t, l, 2*sim.Minute, "wave", "serve", "wave-drained", "")
	l.Seal()
	l.Close()
	if l.AnchorCount() != 2 {
		t.Fatalf("AnchorCount = %d, want 2 (one per forced seal)", l.AnchorCount())
	}
	if fs := Audit(l.Export()); len(fs) != 0 {
		t.Fatalf("forced-seal ledger audits dirty: %v", fs)
	}
}

// build runs a fixed append script — the double-run determinism probe.
func build(t *testing.T) *Ledger {
	t.Helper()
	l := New(Config{Epoch: sim.Hour})
	for i := 0; i < 20; i++ {
		mustAppend(t, l, sim.Time(i)*17*sim.Minute, "cmp", "hardware", "disk-failure", "slot")
	}
	l.Close()
	return l
}

func TestLedgerRootsDeterministic(t *testing.T) {
	a, b := build(t), build(t)
	ra, rb := a.Roots(), b.Roots()
	if len(ra) != len(rb) {
		t.Fatalf("root counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("root %d differs between identical runs", i)
		}
	}
	if a.Head() != b.Head() {
		t.Fatal("heads differ between identical runs")
	}
	ja, err := json.Marshal(a.Export())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Export())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("export JSON differs between identical runs")
	}
}

func TestExportRoundTripAndResume(t *testing.T) {
	l := build(t)
	data, err := json.Marshal(l.Export())
	if err != nil {
		t.Fatal(err)
	}
	var exp Export
	if err := json.Unmarshal(data, &exp); err != nil {
		t.Fatal(err)
	}
	if fs := Audit(&exp); len(fs) != 0 {
		t.Fatalf("round-tripped export audits dirty: %v", fs)
	}
	r, err := Resume(&exp)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	mustAppend(t, r, 30*sim.Hour, "operator", "operator", "annotation", "post-incident note")
	r.Close()
	if fs := Audit(r.Export()); len(fs) != 0 {
		t.Fatalf("resumed+extended ledger audits dirty: %v", fs)
	}
	if r.AnchorCount() != l.AnchorCount()+1 {
		t.Errorf("extension anchored %d batches, want 1", r.AnchorCount()-l.AnchorCount())
	}
	// Against the original trusted roots the extension is visible but
	// nothing diverges.
	fs := AuditAgainst(r.Export(), l.RootRefs())
	if len(fs) != 1 || fs[0].Class != ClassUntrustedTail {
		t.Fatalf("extension audit = %v, want exactly one %s", fs, ClassUntrustedTail)
	}

	// Resume must refuse a tampered export.
	exp.Entries[3].Detail = "rewritten"
	if _, err := Resume(&exp); err == nil {
		t.Fatal("Resume accepted a tampered export")
	}
}
