package procure

import (
	"math"
	"testing"

	"spiderfs/internal/sim"
)

func TestCheckpointBandwidthSpider2(t *testing.T) {
	// 75% of Titan's 600 TB in 6 minutes -> 1.25 TB/s; the paper rounds
	// the program requirement to the "1 TB/s class".
	bw := CheckpointBandwidth(600e12, 0.75, 6*sim.Minute)
	if math.Abs(bw-1.25e12)/1.25e12 > 1e-9 {
		t.Fatalf("bw = %g, want 1.25e12", bw)
	}
}

func TestRandomDerate(t *testing.T) {
	// 1 TB/s sequential at the 24% single-drive random ratio ~ 240 GB/s.
	r := RandomDerate(1e12, 0.24)
	if math.Abs(r-240e9) > 1 {
		t.Fatalf("random target = %g", r)
	}
}

func TestCapacityTargetCORALRule(t *testing.T) {
	// OLCF connected memory ~770 TB; 30x -> 23.1 PB; Spider II's 32 PB
	// exceeds it with margin.
	target := CapacityTarget(770e12, 30, 0)
	if math.Abs(target-23.1e15)/23.1e15 > 1e-9 {
		t.Fatalf("target = %g", target)
	}
	if target > 32e15 {
		t.Fatal("Spider II capacity should exceed the 30x rule")
	}
}

func TestUnitsForMeetsAllTargets(t *testing.T) {
	u := Spider2SSU()
	reqs := Spider2Requirements()
	n := UnitsFor(u, reqs.SeqBps, reqs.RandBps, reqs.Capacity)
	sys := System{Unit: u, Count: n}
	if sys.SeqBps() < reqs.SeqBps || sys.RandBps() < reqs.RandBps || sys.Capacity() < reqs.Capacity {
		t.Fatalf("%d units do not meet targets", n)
	}
	// The real system was 36 SSUs; the model should land in that
	// neighborhood.
	if n < 30 || n > 42 {
		t.Fatalf("units = %d, want ~36", n)
	}
	// Disk count should be in the 20,160 neighborhood.
	if sys.Disks() < 15000 || sys.Disks() > 25000 {
		t.Fatalf("disks = %d, want ~20160", sys.Disks())
	}
}

func TestUnitsForEdgeCases(t *testing.T) {
	u := Spider2SSU()
	if UnitsFor(u, 0, 0, 0) != 0 {
		t.Fatal("zero targets should need zero units")
	}
	if UnitsFor(u, u.SeqBps, 0, 0) != 1 {
		t.Fatal("exactly one unit's worth should need 1")
	}
	if UnitsFor(u, u.SeqBps+1, 0, 0) != 2 {
		t.Fatal("just past one unit should need 2")
	}
}

func TestEvaluateRanksBestValue(t *testing.T) {
	reqs := Spider2Requirements()
	good := Proposal{
		Vendor: "blockco", Unit: Spider2SSU(), Schedule: 0.9,
		PastPerformance: 0.9, Risk: 0.8, Model: "block", IntegrationCost: 2e6,
	}
	pricey := good
	pricey.Vendor = "appliancecorp"
	pricey.Unit.PriceUSD = 2.2e6
	pricey.Model = "appliance"
	pricey.IntegrationCost = 0
	pricey.Risk = 0.95

	weak := good
	weak.Vendor = "slowdisk"
	weak.Unit.SeqBps = 14e9 // needs twice the units
	weak.Unit.PriceUSD = 0.9e6

	scores := Evaluate(reqs, []Proposal{pricey, weak, good}, DefaultWeights())
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[0].Proposal.Vendor != "blockco" {
		t.Fatalf("winner = %s, want blockco (best value)", scores[0].Proposal.Vendor)
	}
	// The over-budget appliance must be infeasible and rank last.
	var appliance Score
	for _, s := range scores {
		if s.Proposal.Vendor == "appliancecorp" {
			appliance = s
		}
	}
	if appliance.Feasible {
		t.Fatalf("appliance at $%.0fM should exceed the $45M budget", appliance.TotalUSD/1e6)
	}
	if scores[len(scores)-1].Proposal.Vendor != "appliancecorp" {
		t.Fatal("infeasible proposal should sort last")
	}
}

func TestCompareModelsFavorsDataCentric(t *testing.T) {
	platforms := []Platform{
		{Name: "titan", MemBytes: 710e12, WorkflowShareBytes: 100e12},
		{Name: "analysis", MemBytes: 30e12, WorkflowShareBytes: 20e12},
		{Name: "viz", MemBytes: 20e12, WorkflowShareBytes: 10e12},
		{Name: "dtn", MemBytes: 10e12, WorkflowShareBytes: 5e12},
	}
	cmp := CompareModels(platforms, Spider2SSU(), 10e9)
	if cmp.DataCentricUSD >= cmp.MachineExclusiveUSD {
		t.Fatalf("data-centric ($%.1fM) should undercut exclusive ($%.1fM)",
			cmp.DataCentricUSD/1e6, cmp.MachineExclusiveUSD/1e6)
	}
	if cmp.MoveHoursPerDay <= 0 {
		t.Fatal("exclusive model should pay data-movement time")
	}
	if cmp.AddPlatformUSDDataCentric >= cmp.AddPlatformUSDExclusive {
		t.Fatal("adding a platform should be cheaper under data-centric")
	}
	if cmp.String() == "" {
		t.Fatal("empty comparison string")
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	cases := []func(){
		func() { CheckpointBandwidth(0, 0.5, sim.Minute) },
		func() { CheckpointBandwidth(1e12, 1.5, sim.Minute) },
		func() { RandomDerate(1e12, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}
