// Package procure encodes the acquisition mathematics of §III and
// §VII: checkpoint-driven bandwidth sizing (75% of memory in 6 minutes
// -> 1 TB/s), the random-I/O derating rule (a near-line drive delivers
// 20-25% of peak under random 1 MiB I/O -> 240 GB/s), the 30x-memory
// capacity rule used in the CORAL acquisition, the Scalable System Unit
// (SSU) building-block model, weighted RFP evaluation, and the
// data-centric vs machine-exclusive cost comparison.
package procure

import (
	"fmt"
	"sort"

	"spiderfs/internal/sim"
)

// CheckpointBandwidth returns the file-system bandwidth needed to dump
// fraction of memBytes within window — the requirement that set Spider
// II's 1 TB/s target (600 TB, 75%, 6 min).
func CheckpointBandwidth(memBytes float64, fraction float64, window sim.Time) float64 {
	if memBytes <= 0 || fraction <= 0 || fraction > 1 || window <= 0 {
		panic("procure: invalid checkpoint sizing inputs") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return memBytes * fraction / window.Seconds()
}

// RandomDerate converts a sequential bandwidth requirement into the
// random-I/O number to put in the RFP, using the measured single-drive
// ratio (20-25% on NL-SAS with 1 MiB blocks).
func RandomDerate(seqBps, ratio float64) float64 {
	if ratio <= 0 || ratio > 1 {
		panic("procure: derate ratio out of range") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return seqBps * ratio
}

// CapacityTarget applies the 30x aggregate-memory rule (§VII; also used
// by DOE/NNSA CORAL). headroom adds the margin that keeps the system
// below its performance-degradation fill level (Lesson 10 suggests 30%
// or more above workload estimates).
func CapacityTarget(aggregateMemBytes float64, multiple, headroom float64) float64 {
	if multiple <= 0 {
		multiple = 30
	}
	return aggregateMemBytes * multiple * (1 + headroom)
}

// SSU is the vendor-defined Scalable System Unit: the unit of
// configuration, pricing, benchmarking, and integration.
type SSU struct {
	Name      string
	SeqBps    float64
	RandBps   float64
	Capacity  float64 // bytes
	Disks     int
	PriceUSD  float64
	PowerKW   float64
	RackUnits int
}

// Spider2SSU returns the as-built Spider II unit: 560 drives, ~28 GB/s
// sequential, ~0.9 PB usable, one of 36.
func Spider2SSU() SSU {
	return SSU{
		Name:      "spider2-ssu",
		SeqBps:    28e9,
		RandBps:   6.7e9,
		Capacity:  0.9e15,
		Disks:     560,
		PriceUSD:  1.1e6,
		PowerKW:   25,
		RackUnits: 84,
	}
}

// System is n SSUs integrated as one storage system.
type System struct {
	Unit  SSU
	Count int
}

// SeqBps, RandBps, Capacity, Disks, and Price aggregate linearly over
// SSUs (the point of the SSU procurement structure).
func (s System) SeqBps() float64   { return float64(s.Count) * s.Unit.SeqBps }
func (s System) RandBps() float64  { return float64(s.Count) * s.Unit.RandBps }
func (s System) Capacity() float64 { return float64(s.Count) * s.Unit.Capacity }
func (s System) Disks() int        { return s.Count * s.Unit.Disks }
func (s System) PriceUSD() float64 { return float64(s.Count) * s.Unit.PriceUSD }

// UnitsFor returns the SSU count needed to meet all three targets
// simultaneously.
func UnitsFor(u SSU, seqBps, randBps, capacity float64) int {
	n := 0
	need := func(target, per float64) int {
		if target <= 0 {
			return 0
		}
		k := int(target / per)
		if float64(k)*per < target {
			k++
		}
		return k
	}
	if k := need(seqBps, u.SeqBps); k > n {
		n = k
	}
	if k := need(randBps, u.RandBps); k > n {
		n = k
	}
	if k := need(capacity, u.Capacity); k > n {
		n = k
	}
	return n
}

// Requirements is the RFP target set.
type Requirements struct {
	SeqBps    float64
	RandBps   float64
	Capacity  float64
	BudgetUSD float64
}

// Spider2Requirements returns the published targets: 1 TB/s sequential,
// 240 GB/s random, 32 PB.
func Spider2Requirements() Requirements {
	return Requirements{SeqBps: 1e12, RandBps: 240e9, Capacity: 32e15, BudgetUSD: 45e6}
}

// Proposal is one vendor response: an SSU at a price, plus scored
// non-technical factors in [0, 1].
type Proposal struct {
	Vendor          string
	Unit            SSU
	Schedule        float64 // delivery schedule confidence
	PastPerformance float64
	Risk            float64 // 1 = lowest risk
	// Model selects block-storage vs appliance (affects integration
	// burden, captured in IntegrationCost).
	Model           string
	IntegrationCost float64 // USD borne by the center (block model > 0)
}

// Weights for the §III-C evaluation: "technical elements, performance,
// schedule, and cost each play an integrated role".
type Weights struct {
	Performance float64
	Capacity    float64
	Cost        float64
	Schedule    float64
	Past        float64
	Risk        float64
}

// DefaultWeights mirrors a best-value evaluation.
func DefaultWeights() Weights {
	return Weights{Performance: 0.30, Capacity: 0.15, Cost: 0.25, Schedule: 0.10, Past: 0.10, Risk: 0.10}
}

// Score is one proposal's evaluation.
type Score struct {
	Proposal Proposal
	Units    int
	TotalUSD float64
	Feasible bool
	Value    float64
}

// Evaluate sizes each proposal against the requirements, computes total
// cost (units + integration), and ranks by weighted value. Infeasible
// (over-budget) proposals sort last with Feasible=false.
func Evaluate(reqs Requirements, proposals []Proposal, w Weights) []Score {
	scores := make([]Score, 0, len(proposals))
	for _, p := range proposals {
		units := UnitsFor(p.Unit, reqs.SeqBps, reqs.RandBps, reqs.Capacity)
		sys := System{Unit: p.Unit, Count: units}
		total := sys.PriceUSD() + p.IntegrationCost
		s := Score{Proposal: p, Units: units, TotalUSD: total, Feasible: total <= reqs.BudgetUSD}
		// Normalize: performance/capacity beyond requirement earn
		// diminishing credit; cost credit is budget fraction unspent.
		perf := sys.SeqBps() / reqs.SeqBps
		if perf > 1.5 {
			perf = 1.5
		}
		capRatio := sys.Capacity() / reqs.Capacity
		if capRatio > 1.5 {
			capRatio = 1.5
		}
		costCredit := 0.0
		if reqs.BudgetUSD > 0 {
			costCredit = 1 - total/reqs.BudgetUSD
			if costCredit < 0 {
				costCredit = 0
			}
		}
		s.Value = w.Performance*perf + w.Capacity*capRatio + w.Cost*costCredit +
			w.Schedule*p.Schedule + w.Past*p.PastPerformance + w.Risk*p.Risk
		scores = append(scores, s)
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].Feasible != scores[j].Feasible {
			return scores[i].Feasible
		}
		return scores[i].Value > scores[j].Value
	})
	return scores
}

// CenterModel compares the data-centric center-wide PFS against
// machine-exclusive per-platform file systems for a center with the
// given compute platforms.
type Platform struct {
	Name     string
	MemBytes float64
	// WorkflowShareBytes is how much of this platform's output other
	// platforms consume (drives data movement in the exclusive model).
	WorkflowShareBytes float64
}

// ModelComparison is the E6 result.
type ModelComparison struct {
	DataCentricUSD            float64
	MachineExclusiveUSD       float64
	MovedBytesPerDay          float64 // exclusive model's inter-system traffic
	MoveHoursPerDay           float64
	AddPlatformUSDDataCentric float64
	AddPlatformUSDExclusive   float64
}

// CompareModels sizes both architectures from the same SSU and returns
// costs. dtnBps is the data-mover bandwidth available in the exclusive
// model.
func CompareModels(platforms []Platform, unit SSU, dtnBps float64) ModelComparison {
	var totalMem, moved float64
	for _, p := range platforms {
		totalMem += p.MemBytes
		moved += p.WorkflowShareBytes
	}
	var out ModelComparison
	// Data-centric: one system sized by the 30x rule over all memory.
	dcCap := CapacityTarget(totalMem, 30, 0.3)
	dcUnits := UnitsFor(unit, 0, 0, dcCap)
	out.DataCentricUSD = float64(dcUnits) * unit.PriceUSD

	// Machine-exclusive: each platform gets its own system (30x its
	// memory), plus a data-mover infrastructure charge of 10% of total.
	for _, p := range platforms {
		cap := CapacityTarget(p.MemBytes, 30, 0.3)
		units := UnitsFor(unit, 0, 0, cap)
		out.MachineExclusiveUSD += float64(units) * unit.PriceUSD
	}
	out.MachineExclusiveUSD *= 1.10
	out.MovedBytesPerDay = moved
	if dtnBps > 0 {
		out.MoveHoursPerDay = moved / dtnBps / 3600
	}

	// Marginal cost of adding one more analysis cluster (1/20 of total
	// memory): data-centric rides existing margin; exclusive buys a new
	// system.
	newMem := totalMem / 20
	exUnits := UnitsFor(unit, 0, 0, CapacityTarget(newMem, 30, 0.3))
	out.AddPlatformUSDExclusive = float64(exUnits)*unit.PriceUSD*1.10 + 0.2e6
	out.AddPlatformUSDDataCentric = 0 // capacity margin absorbs it
	return out
}

func (m ModelComparison) String() string {
	return fmt.Sprintf("data-centric $%.1fM vs machine-exclusive $%.1fM (+%.1f h/day of data movement)",
		m.DataCentricUSD/1e6, m.MachineExclusiveUSD/1e6, m.MoveHoursPerDay)
}
