// Package rng provides a deterministic, splittable pseudo-random source
// and the probability distributions used across the Spider models.
//
// Every experiment in this repository derives all of its randomness from
// a single seed through named Split calls, so runs are reproducible and
// sub-models remain statistically independent of each other even when
// the model structure changes.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is an xoshiro256** generator. It is not safe for concurrent use;
// split per-goroutine sources with Split.
type Source struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a source seeded from seed via SplitMix64 state expansion.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives an independent source labeled by name. Splitting the same
// parent with the same label always yields the same child stream.
func (r *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(r.Uint64() ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return int(r.Uint64() % uint64(n)) // negligible modulo bias for model use
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return -math.Log(1-r.Float64()) / rate
}

// Pareto returns a Pareto(alpha, xm) value: P(X > x) = (xm/x)^alpha for
// x >= xm. The paper's workload characterization found inter-arrival and
// idle-time distributions with Pareto (long) tails. alpha and xm must be
// positive.
func (r *Source) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("rng: Pareto with non-positive parameter") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// BoundedPareto returns a Pareto(alpha) value truncated to [lo, hi] by
// inverse-CDF sampling of the bounded Pareto distribution.
func (r *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("rng: BoundedPareto with invalid parameters") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // avoid log(0)
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNormal returns a Normal(mean, stddev) value rejected into
// [lo, hi]. It panics if the interval is empty.
func (r *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if hi <= lo {
		panic("rng: TruncNormal with empty interval") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	for i := 0; i < 1000; i++ {
		v := r.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	// Pathological parameters: fall back to uniform on the interval.
	return lo + (hi-lo)*r.Float64()
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Weibull returns a Weibull(shape k, scale lambda) value.
func (r *Source) Weibull(k, lambda float64) float64 {
	if k <= 0 || lambda <= 0 {
		panic("rng: Weibull with non-positive parameter") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return lambda * math.Pow(-math.Log(1-r.Float64()), 1/k)
}

// Poisson returns a Poisson(lambda) count using Knuth's method for small
// lambda and a normal approximation above 500.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf draws from a Zipf distribution over [1, n] with exponent s > 0
// using inverse-CDF over precomputed weights held by the Zipfian helper;
// for one-off draws use NewZipf.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf with invalid parameters") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
