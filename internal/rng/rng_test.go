package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitDeterminismAndIndependence(t *testing.T) {
	a, b := New(7), New(7)
	c1, c2 := a.Split("disks"), b.Split("disks")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("same-label splits diverged")
		}
	}
	d1 := New(7).Split("disks")
	d2 := New(7).Split("network")
	same := 0
	for i := 0; i < 100; i++ {
		if d1.Uint64() == d2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-label splits suspiciously correlated: %d/100 equal", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := New(4)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %f, want ~0.5", mean)
	}
}

func TestParetoProperties(t *testing.T) {
	r := New(5)
	const alpha, xm = 2.5, 1.0
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto below xm: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	want := alpha * xm / (alpha - 1) // 5/3
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("Pareto mean = %f, want ~%f", mean, want)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.2, 4096, 1<<30)
		if v < 4096 || v > 1<<30 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %f", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev = %f", math.Sqrt(variance))
	}
}

func TestTruncNormalRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(1.0, 0.5, 0.7, 1.1)
		if v < 0.7 || v > 1.1 {
			t.Fatalf("TruncNormal out of range: %v", v)
		}
	}
}

func TestTruncNormalPathologicalFallsBack(t *testing.T) {
	r := New(9)
	// Interval 50 sigma away from the mean: rejection will fail over to
	// uniform; result must still be inside.
	v := r.TruncNormal(0, 1, 50, 51)
	if v < 50 || v > 51 {
		t.Fatalf("fallback out of range: %v", v)
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := New(10)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 2)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Weibull(1,2) mean = %f, want ~2", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(11)
	for _, lambda := range []float64{0.5, 4, 50, 1000} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Fatalf("Poisson(%f) mean = %f", lambda, mean)
		}
	}
	if New(1).Poisson(-1) != 0 {
		t.Fatal("Poisson of negative lambda should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(12)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 101)
	n := 100000
	for i := 0; i < n; i++ {
		k := z.Draw()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] < counts[2] || counts[2] < counts[10] {
		t.Fatalf("Zipf not monotone: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
	// Rank-1 frequency for s=1, n=100 is 1/H(100) ~ 0.192.
	frac := float64(counts[1]) / float64(n)
	if math.Abs(frac-0.192) > 0.02 {
		t.Fatalf("Zipf rank-1 fraction = %f, want ~0.192", frac)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(13)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 0.5)
	}
	// median of lognormal is exp(mu)
	count := 0
	want := math.Exp(2)
	for _, v := range vals {
		if v < want {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("LogNormal median fraction = %f", frac)
	}
}

func TestBool(t *testing.T) {
	r := New(14)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.6) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.6) > 0.01 {
		t.Fatalf("Bool(0.6) fraction = %f", frac)
	}
}

func TestShuffle(t *testing.T) {
	r := New(15)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := map[int]bool{}
	for _, x := range v {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatal("shuffle lost elements")
	}
}
