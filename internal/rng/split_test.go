package rng

import (
	"fmt"
	"testing"
)

// TestSplitGoldenValues pins the exact output of the seed → Split →
// sibling-stream derivation the sweep runner uses. The literals were
// generated once and must never change: they are stable across Go
// versions because the generator is pure integer arithmetic (SplitMix64
// expansion + xoshiro256** + FNV-1a labels) with no dependence on
// math/rand or platform word order. If this test fails, every
// committed sweep fingerprint is invalidated with it.
func TestSplitGoldenValues(t *testing.T) {
	golden := [][3]uint64{
		{0x0e64f94eabbb84e7, 0x6aee3634d79514f6, 0x8679d8a1315c13ac},
		{0xe69a945e2b4e172c, 0xfbcb7b08e1e182e5, 0xe8f7d594fc381d47},
		{0x1629d5a2f105ef96, 0x98367bfde0a7d96d, 0x5da6c3cb2c3fc61c},
		{0x6056703055481b5a, 0x03d369de94a6a4f7, 0xe2d338d6451842f8},
	}
	// Split mutates the parent, so sibling derivation order is part of
	// the contract: replica-%05d streams must be drawn in index order.
	root := New(42).Split("sweep/golden")
	for i, want := range golden {
		s := root.Split(fmt.Sprintf("replica-%05d", i))
		for j, w := range want {
			if got := s.Uint64(); got != w {
				t.Errorf("replica %d draw %d = %#016x, want %#016x", i, j, got, w)
			}
		}
	}

	direct := New(42)
	for j, w := range [2]uint64{0x15780b2e0c2ec716, 0x6104d9866d113a7e} {
		if got := direct.Uint64(); got != w {
			t.Errorf("New(42) draw %d = %#016x, want %#016x", j, got, w)
		}
	}
}

// TestSplitSiblingsPrefixDisjoint checks that sibling streams are
// pairwise non-overlapping over a substantial prefix: 32 replica
// streams × 4096 draws must produce no value twice, within or across
// streams. xoshiro256** is a bijection on its state space, so distinct
// states cannot collide this early except by a seeding defect — which
// is exactly what this would catch (e.g. two labels hashing a parent
// draw into the same state).
func TestSplitSiblingsPrefixDisjoint(t *testing.T) {
	const (
		siblings = 32
		prefix   = 4096
	)
	root := New(0xdecafbad).Split("sweep/disjoint")
	seen := make(map[uint64]string, siblings*prefix)
	for i := 0; i < siblings; i++ {
		label := fmt.Sprintf("replica-%05d", i)
		s := root.Split(label)
		for j := 0; j < prefix; j++ {
			v := s.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("value %#016x drawn by both %s and %s (draw %d)", v, prev, label, j)
			}
			seen[v] = label
		}
	}
	if len(seen) != siblings*prefix {
		t.Fatalf("%d distinct values, want %d", len(seen), siblings*prefix)
	}
}
