package benchsuite

import (
	"strings"
	"testing"

	"spiderfs/internal/sweep"
)

// small trims the standard entries to a handful of replicas so the
// double-run contract is exercised on the real experiment bodies
// without paying full campaign cost in tier-1.
func small(seed uint64) []sweep.Entry {
	entries := SweepEntries(seed)
	for i := range entries {
		entries[i].Replicas = 3
	}
	return entries
}

// TestSweepSuiteDeterministic runs the real E3/E13/E18 replica bodies
// through the suite harness, which itself double-runs each sweep
// serially and in parallel and fails on any divergence. Then the whole
// suite is run twice to check the rendered artifact is reproducible.
func TestSweepSuiteDeterministic(t *testing.T) {
	a, err := sweep.RunSuite(small(7), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep.RunSuite(small(7), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sweeps) != 3 {
		t.Fatalf("%d sweeps, want 3", len(a.Sweeps))
	}
	for i, r := range a.Sweeps {
		if !r.Deterministic {
			t.Errorf("%s: serial and parallel runs diverged", r.Label)
		}
		if r.Fingerprint != b.Sweeps[i].Fingerprint {
			t.Errorf("%s: fingerprint differs across suite runs: %s vs %s",
				r.Label, r.Fingerprint, b.Sweeps[i].Fingerprint)
		}
		if r.Errors != 0 {
			t.Errorf("%s: %d failed replicas", r.Label, r.Errors)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: no merged metrics", r.Label)
		}
	}
	for _, label := range []string{"e3-slowdisk", "e13-purge", "e18-chaos"} {
		if !strings.Contains(a.Render(), label) {
			t.Errorf("render omits %s", label)
		}
	}
}
