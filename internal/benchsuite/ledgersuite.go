package benchsuite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"spiderfs/internal/chaos"
	"spiderfs/internal/ledger"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/sweep"
)

// LedgerBatch is one point of the anchoring batch-size sweep: a fixed
// synthetic entry stream (one entry per simulated second, the density
// of a busy campaign's monitor bursts) appended under one MaxBatch
// setting. Entries/Anchors/Head are deterministic and exact-gated;
// AppendNs and EntriesPerSec are wall-clock throughput, recorded only.
type LedgerBatch struct {
	MaxBatch      int     `json:"max_batch"`
	Entries       int     `json:"entries"`
	Anchors       int     `json:"anchors"`
	Head          string  `json:"head"`
	AppendNs      int64   `json:"append_ns"`
	EntriesPerSec float64 `json:"entries_per_sec"`
}

// LedgerTamper is one adversarial case applied to the campaign export:
// Detected records whether the auditor flagged it, Class the first
// finding's class, and Epoch the offending epoch it identified.
type LedgerTamper struct {
	Name     string `json:"name"`
	Detected bool   `json:"detected"`
	Class    string `json:"class"`
	Epoch    int    `json:"epoch"`
}

// LedgerSuite is the BENCH_ledger.json artifact: the quick chaos
// campaign's anchored root sequence (double-run and traced-vs-untraced
// identical, exact-gated), the auditor's adversarial scorecard, and the
// batch-size sweep.
type LedgerSuite struct {
	Schema string `json:"schema"`
	CPUs   int    `json:"cpus"`
	Seed   uint64 `json:"seed"`

	// Quick-campaign ledger identity, exact-gated by internal/regress.
	CampaignEntries int      `json:"campaign_entries"`
	CampaignAnchors int      `json:"campaign_anchors"`
	CampaignDrops   int      `json:"campaign_drops"`
	CampaignRoots   []string `json:"campaign_roots"`
	CampaignHead    string   `json:"campaign_head"`
	// Deterministic: two runs produced byte-identical exports.
	// TracedIdentical: attaching the span tracer left every root
	// untouched. AuditClean: the export audits with zero findings.
	Deterministic   bool `json:"deterministic"`
	TracedIdentical bool `json:"traced_identical"`
	AuditClean      bool `json:"audit_clean"`

	// Adversarial coverage: every tamper class must be detected.
	TamperTotal     int            `json:"tamper_total"`
	TampersDetected int            `json:"tampers_detected"`
	Tampers         []LedgerTamper `json:"tampers"`

	Batches []LedgerBatch `json:"batches"`
}

// batchSweepEntries is the synthetic stream length for the batch-size
// sweep; at one entry per simulated second it spans a bit over two
// epoch hours, so every MaxBatch point also crosses an epoch boundary.
const batchSweepEntries = 8192

// RunLedgerSuite builds the BENCH_ledger.json artifact. clock supplies
// monotonic wall nanoseconds for the throughput numbers (nil records
// zeros), exactly like sweep.RunSuite.
func RunLedgerSuite(seed uint64, clock sweep.Clock) (LedgerSuite, error) {
	now := func() int64 { return 0 }
	if clock != nil {
		now = clock
	}
	s := LedgerSuite{
		Schema: "spiderfs-ledger-bench/1",
		CPUs:   runtime.GOMAXPROCS(0),
		Seed:   seed,
	}

	// Campaign identity: double run, then a traced run.
	r1 := chaos.Run(chaos.QuickConfig(seed))
	r2 := chaos.Run(chaos.QuickConfig(seed))
	b1, err := json.Marshal(r1.Ops)
	if err != nil {
		return s, fmt.Errorf("ledger suite: marshal export: %w", err)
	}
	b2, err := json.Marshal(r2.Ops)
	if err != nil {
		return s, fmt.Errorf("ledger suite: marshal export: %w", err)
	}
	s.CampaignEntries = r1.LedgerEntries
	s.CampaignAnchors = r1.LedgerAnchors
	s.CampaignDrops = r1.LedgerDrops
	s.CampaignRoots = r1.LedgerRoots
	s.CampaignHead = r1.LedgerHead
	s.Deterministic = bytes.Equal(b1, b2)
	s.AuditClean = len(ledger.Audit(r1.Ops)) == 0

	traced := chaos.QuickConfig(seed)
	traced.Tracer = spantrace.New(rng.New(seed^0x7ed9), 4)
	r3 := chaos.Run(traced)
	s.TracedIdentical = r3.LedgerHead == r1.LedgerHead &&
		len(r3.LedgerRoots) == len(r1.LedgerRoots)
	if s.TracedIdentical {
		for i := range r1.LedgerRoots {
			if r3.LedgerRoots[i] != r1.LedgerRoots[i] {
				s.TracedIdentical = false
				break
			}
		}
	}

	s.Tampers = runTampers(r1.Ops)
	s.TamperTotal = len(s.Tampers)
	for _, t := range s.Tampers {
		if t.Detected {
			s.TampersDetected++
		}
	}

	for _, maxBatch := range []int{64, 256, 1024, 4096} {
		l := ledger.New(ledger.Config{Epoch: sim.Hour, MaxBatch: maxBatch})
		t0 := now()
		for i := 0; i < batchSweepEntries; i++ {
			if err := l.Append(sim.Time(i)*sim.Second,
				fmt.Sprintf("oss%03d", i%97), "hardware", "synthetic-event", ""); err != nil {
				return s, fmt.Errorf("ledger suite: batch %d: %w", maxBatch, err)
			}
		}
		l.Close()
		dt := now() - t0
		p := LedgerBatch{
			MaxBatch: maxBatch, Entries: l.Len(), Anchors: l.AnchorCount(),
			Head: l.Head(), AppendNs: dt,
		}
		if dt > 0 {
			p.EntriesPerSec = float64(l.Len()) / (float64(dt) / 1e9)
		}
		s.Batches = append(s.Batches, p)
	}
	return s, nil
}

// runTampers applies one instance of each tamper class the issue's
// threat model names to copies of the campaign export and records
// whether AuditAgainst (with the honest roots as trusted memory)
// detects it. The forged-suffix case goes through the public Resume
// API: the attacker's rewritten tail is internally consistent — every
// hash recomputed — and only the trusted root sequence exposes it.
func runTampers(exp *ledger.Export) []LedgerTamper {
	trusted := exp.RootRefs()
	verdict := func(name string, t *ledger.Export) LedgerTamper {
		fs := ledger.AuditAgainst(t, trusted)
		out := LedgerTamper{Name: name, Detected: len(fs) > 0, Epoch: -1}
		if len(fs) > 0 {
			out.Class = fs[0].Class
			out.Epoch = fs[0].Epoch
		}
		return out
	}
	var out []LedgerTamper
	mid := len(exp.Entries) / 2

	t := cloneExport(exp)
	t.Entries[mid].Action += "x" // single payload mutation
	out = append(out, verdict("entry-mutation", t))

	t = cloneExport(exp)
	t.Entries = append(t.Entries[:mid:mid], t.Entries[mid+1:]...)
	out = append(out, verdict("entry-deletion", t))

	// Truncate at an anchor boundary and regress the head — internally
	// consistent, caught only against trusted roots.
	cut := len(exp.Anchors) / 2
	t = cloneExport(exp)
	a := t.Anchors[cut-1]
	t.Entries = t.Entries[:a.FirstSeq+uint64(a.Entries)]
	t.Anchors = t.Anchors[:cut]
	t.Head = a.Hash
	out = append(out, verdict("chain-truncation", t))

	t = cloneExport(exp)
	t.Anchors[0], t.Anchors[1] = t.Anchors[1], t.Anchors[0]
	out = append(out, verdict("batch-reorder", t))

	// Forged suffix: rewrite history after the cut with an all-quiet
	// narrative, every hash internally consistent via Resume.
	t = cloneExport(exp)
	t.Entries = t.Entries[:a.FirstSeq+uint64(a.Entries)]
	t.Anchors = t.Anchors[:cut]
	t.Head = a.Hash
	forged, err := ledger.Resume(t)
	if err != nil {
		out = append(out, LedgerTamper{Name: "forged-suffix", Detected: false, Epoch: -1,
			Class: "resume-failed: " + err.Error()})
		return out
	}
	last := t.Entries[len(t.Entries)-1].At
	for i := 0; i < 3; i++ {
		_ = forged.Append(last+sim.Time(i+1)*sim.Hour, "fleet", "operator", "all-quiet", "")
	}
	forged.Close()
	out = append(out, verdict("forged-suffix", forged.Export()))
	return out
}

func cloneExport(exp *ledger.Export) *ledger.Export {
	c := *exp
	c.Entries = append([]ledger.Entry(nil), exp.Entries...)
	c.Anchors = append([]ledger.Anchor(nil), exp.Anchors...)
	return &c
}

// Render formats the suite for stdout.
func (s LedgerSuite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ledger suite: quick campaign seed %d on %d CPU(s)\n", s.Seed, s.CPUs)
	fmt.Fprintf(&b, "campaign ledger: %d entries, %d anchors (%d refused), head %.16s..\n",
		s.CampaignEntries, s.CampaignAnchors, s.CampaignDrops, s.CampaignHead)
	fmt.Fprintf(&b, "deterministic=%v traced-identical=%v audit-clean=%v\n",
		s.Deterministic, s.TracedIdentical, s.AuditClean)
	fmt.Fprintf(&b, "tamper detection: %d/%d classes caught\n", s.TampersDetected, s.TamperTotal)
	for _, t := range s.Tampers {
		fmt.Fprintf(&b, "  %-18s detected=%v as %s (epoch %d)\n", t.Name, t.Detected, t.Class, t.Epoch)
	}
	fmt.Fprintf(&b, "batch-size sweep (%d entries at 1/s simulated):\n", batchSweepEntries)
	for _, p := range s.Batches {
		fmt.Fprintf(&b, "  max_batch %-5d -> %4d anchors, head %.16s.., %.0f entries/s appended\n",
			p.MaxBatch, p.Anchors, p.Head, p.EntriesPerSec)
	}
	return b.String()
}

// JSON renders the artifact.
func (s LedgerSuite) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
