package benchsuite

import (
	"encoding/json"
	"testing"
)

// TestLedgerSuiteDeterministic pins the artifact's own determinism:
// two runs under a counter clock must agree on every gated field (the
// wall-derived throughput numbers are zeroed by the injected clock).
func TestLedgerSuiteDeterministic(t *testing.T) {
	run := func() LedgerSuite {
		s, err := RunLedgerSuite(7, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("ledger suite double run diverged:\n%s\nvs\n%s", aj, bj)
	}
}

func TestLedgerSuiteProperties(t *testing.T) {
	tick := int64(0)
	s, err := RunLedgerSuite(7, func() int64 { tick += 1e6; return tick })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Deterministic || !s.TracedIdentical || !s.AuditClean {
		t.Fatalf("deterministic=%v traced=%v clean=%v, want all true",
			s.Deterministic, s.TracedIdentical, s.AuditClean)
	}
	if s.CampaignEntries == 0 || s.CampaignAnchors == 0 || s.CampaignDrops != 0 {
		t.Fatalf("campaign ledger %d/%d/%d", s.CampaignEntries, s.CampaignAnchors, s.CampaignDrops)
	}
	if len(s.CampaignRoots) != s.CampaignAnchors {
		t.Fatalf("%d roots for %d anchors", len(s.CampaignRoots), s.CampaignAnchors)
	}
	if s.TamperTotal != 5 || s.TampersDetected != 5 {
		t.Fatalf("tampers %d/%d, want 5/5: %+v", s.TampersDetected, s.TamperTotal, s.Tampers)
	}
	for _, tc := range s.Tampers {
		if tc.Epoch < 0 {
			t.Fatalf("tamper %s detected without an offending epoch: %+v", tc.Name, tc)
		}
	}
	if len(s.Batches) != 4 {
		t.Fatalf("%d batch points, want 4", len(s.Batches))
	}
	prev := 0
	for _, p := range s.Batches {
		if p.Entries != batchSweepEntries {
			t.Fatalf("batch %d appended %d entries", p.MaxBatch, p.Entries)
		}
		// Smaller batches seal more anchors; the sweep must be strictly
		// ordered or the MaxBatch knob is not doing anything.
		if prev != 0 && p.Anchors >= prev {
			t.Fatalf("anchors not decreasing with batch size: %+v", s.Batches)
		}
		prev = p.Anchors
		if p.AppendNs <= 0 || p.EntriesPerSec <= 0 {
			t.Fatalf("batch %d recorded no throughput under a ticking clock", p.MaxBatch)
		}
	}
	if s.Render() == "" {
		t.Fatal("empty render")
	}
}
