// Package benchsuite implements the acquisition benchmark suite of
// §III-B: a synthetic parameter-space exploration over request size,
// queue depth, read/write ratio, and sequential/random mode, run at both
// the block level (fair-lio over raw RAID LUNs) and the file-system
// level (obdfilter-survey over the OST stack). Comparing the two
// quantifies the file system software overhead, and specific cells mimic
// the real mixed-workload patterns of §II.
package benchsuite

import (
	"fmt"
	"strings"

	"spiderfs/internal/lustre"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

// Sweep is the parameter grid. Zero-valued fields get defaults drawn
// from the published suite.
type Sweep struct {
	RequestSizes []int64
	QueueDepths  []int
	WriteFracs   []float64
	Random       []bool
	CellDuration sim.Time
	// RandomSpan bounds block-level random offsets to this fraction of
	// the LUN so the comparison matches the FS-level cells, whose data
	// occupies ~25% of the platters. Zero means 0.25.
	RandomSpan float64
}

// DefaultSweep returns the grid OLCF shipped to vendors.
func DefaultSweep() Sweep {
	return Sweep{
		RequestSizes: []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20},
		QueueDepths:  []int{1, 4, 16},
		WriteFracs:   []float64{0, 0.6, 1.0}, // read, the §II mix, write
		Random:       []bool{false, true},
		CellDuration: sim.Second,
	}
}

// Cell is one grid point's result.
type Cell struct {
	RequestSize int64
	QueueDepth  int
	WriteFrac   float64
	Random      bool
	MBps        float64
	IOPS        float64
	MeanLatMs   float64
}

// Key renders the cell coordinates compactly.
func (c Cell) Key() string {
	mode := "seq"
	if c.Random {
		mode = "rnd"
	}
	return fmt.Sprintf("%s-qd%d-w%.0f%%-%s", fmtSize(c.RequestSize), c.QueueDepth, c.WriteFrac*100, mode)
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	default:
		return fmt.Sprintf("%dK", n>>10)
	}
}

// RunBlockLevel sweeps the grid against a raw RAID group.
func RunBlockLevel(eng *sim.Engine, g *raid.Group, sweep Sweep, src *rng.Source) []Cell {
	var cells []Cell
	span := sweep.RandomSpan
	if span == 0 {
		span = 0.25
	}
	for _, rs := range sweep.RequestSizes {
		for _, qd := range sweep.QueueDepths {
			for _, wf := range sweep.WriteFracs {
				for _, rnd := range sweep.Random {
					res := workload.RunFairLIOGroup(eng, g, workload.FairLIOConfig{
						RequestSize: rs, QueueDepth: qd, WriteFrac: wf, Random: rnd,
						RandomSpan: span, Duration: sweep.CellDuration,
					}, src.Split(fmt.Sprintf("blk-%d-%d-%f-%v", rs, qd, wf, rnd)))
					cells = append(cells, Cell{
						RequestSize: rs, QueueDepth: qd, WriteFrac: wf, Random: rnd,
						MBps: res.MBps, IOPS: res.IOPS, MeanLatMs: res.LatencyMs.Mean,
					})
				}
			}
		}
	}
	return cells
}

// ostDriver adapts a lustre object to the survey driver.
type ostDriver struct{ obj *lustre.Object }

func (d ostDriver) Write(size int64, done func())             { d.obj.Write(size, done) }
func (d ostDriver) Read(size int64, random bool, done func()) { d.obj.Read(size, random, done) }

// RunFSLevel sweeps the same grid through the OST stack (controller +
// RAID + obdfilter-equivalent overheads) of the given namespace.
func RunFSLevel(fs *lustre.FS, sweep Sweep, src *rng.Source) []Cell {
	eng := fs.Engine()
	var cells []Cell
	cellIdx := 0
	for _, rs := range sweep.RequestSizes {
		for _, qd := range sweep.QueueDepths {
			for _, wf := range sweep.WriteFracs {
				for _, rnd := range sweep.Random {
					var file *lustre.File
					fs.Create(fmt.Sprintf("suite/cell%05d", cellIdx), 1, func(f *lustre.File) { file = f })
					cellIdx++
					eng.Run()
					// Pre-size the OST toward 25% fill so random accesses
					// span a realistic extent (matching the block
					// benchmark's whole-LUN randomness) without pushing
					// the OST into the high-fill fragmentation regime.
					ost := fs.OSTs[file.OSTIndices[0]]
					if target := ost.Capacity() / 4; ost.Used() < target {
						file.Objects[0].Preload(target - ost.Used())
					}
					cells = append(cells, runFSCell(fs, file, rs, qd, wf, rnd, sweep.CellDuration, src))
				}
			}
		}
	}
	return cells
}

func runFSCell(fs *lustre.FS, file *lustre.File, rs int64, qd int, wf float64, rnd bool, dur sim.Time, src *rng.Source) Cell {
	eng := fs.Engine()
	obj := file.Objects[0]
	oss := fs.OSSes[fs.OSSOf(file.OSTIndices[0])]
	cell := Cell{RequestSize: rs, QueueDepth: qd, WriteFrac: wf, Random: rnd}
	var moved int64
	var ops uint64
	var latSum sim.Time
	end := eng.Now() + dur
	outstanding := 0
	lsrc := src.Split(fmt.Sprintf("fs-%d-%d-%f-%v", rs, qd, wf, rnd))
	var issue func()
	issue = func() {
		for outstanding < qd && eng.Now() < end {
			outstanding++
			t0 := eng.Now()
			done := func() {
				outstanding--
				moved += rs
				ops++
				latSum += eng.Now() - t0
				issue()
			}
			// FS-level requests pass through the OSS software path, then
			// synchronously through controller and RAID (survey
			// semantics: the ack means data reached disk).
			if lsrc.Bool(wf) {
				oss.Service(rs, func() { obj.WriteSync(rs, rnd, done) })
			} else {
				oss.Service(rs, func() { obj.Read(rs, rnd, done) })
			}
		}
	}
	start := eng.Now()
	issue()
	eng.Run()
	durAct := eng.Now() - start
	if durAct > 0 {
		cell.MBps = float64(moved) / 1e6 / durAct.Seconds()
		cell.IOPS = float64(ops) / durAct.Seconds()
	}
	if ops > 0 {
		cell.MeanLatMs = (latSum / sim.Time(ops)).Millis()
	}
	return cell
}

// Overhead pairs block- and FS-level cells and reports the software
// overhead per cell: 1 - fsMBps/blockMBps (positive when the stack costs
// throughput).
type Overhead struct {
	Cell      string
	BlockMBps float64
	FSMBps    float64
	Frac      float64
}

// CompareLevels matches cells by coordinates.
func CompareLevels(block, fs []Cell) []Overhead {
	idx := map[string]Cell{}
	for _, c := range block {
		idx[c.Key()] = c
	}
	var out []Overhead
	for _, f := range fs {
		b, ok := idx[f.Key()]
		if !ok || b.MBps == 0 {
			continue
		}
		out = append(out, Overhead{
			Cell: f.Key(), BlockMBps: b.MBps, FSMBps: f.MBps,
			Frac: 1 - f.MBps/b.MBps,
		})
	}
	return out
}

// Render prints a fixed-width table of cells.
func Render(cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", "cell", "MB/s", "IOPS", "lat(ms)")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-24s %10.1f %10.0f %10.2f\n", c.Key(), c.MBps, c.IOPS, c.MeanLatMs)
	}
	return b.String()
}
