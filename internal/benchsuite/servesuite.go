package benchsuite

import (
	"spiderfs/internal/serve"
	"spiderfs/internal/sweep"
)

// ServeCatalog is the sweep catalog the simulation service registers:
// everything `spidersim sweep` can run, so a "sweep"-kind session names
// the same entries the CLI does. Both cmd/spidersimd and the one-shot
// `spidersim session` path use this, which is what makes their reports
// byte-identical for sweep specs.
func ServeCatalog(seed uint64) []sweep.Entry {
	return append(SweepEntries(seed), IntegrityEntries(seed)...)
}

// RunServeSuite runs the session-service benchmark: sessions/sec and
// latency percentiles on the cold, warm-pool, and cache-hit paths, with
// the cold-vs-warm fingerprint cross-check. clock supplies wall
// nanoseconds (nil records zero timings, as the deterministic gates
// only read the fingerprint fields).
func RunServeSuite(clock func() int64) serve.Suite {
	return serve.RunBench(clock)
}
