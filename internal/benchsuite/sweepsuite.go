package benchsuite

import (
	"spiderfs/internal/chaos"
	"spiderfs/internal/purge"
	"spiderfs/internal/qa"
	"spiderfs/internal/sweep"
)

// SweepEntries returns the repository's standard seed sweeps — the
// experiments whose paper claims are statistical shapes, not point
// samples: E3 slow-disk elimination (§V-A drive-spread distribution),
// E13 purge residency (§IV-C under stochastic production), and the E18
// chaos campaign (§IV-D availability over many fault schedules). Each
// replica is an independent full simulation seeded from the sweep
// stream; `spidersim sweep` and `benchsuite -sweep` both drive exactly
// this list, and BENCH_sweep.json is its artifact.
func SweepEntries(seed uint64) []sweep.Entry {
	e3 := qa.DefaultElimination()
	e3.BenchBytes = 16 << 20
	return []sweep.Entry{
		{Label: "e3-slowdisk", Replicas: 16, Seed: seed, Body: qa.SlowDiskReplica(16, e3)},
		{Label: "e13-purge", Replicas: 16, Seed: seed, Body: purge.ResidencyReplica(purge.DefaultResidency())},
		{Label: "e18-chaos", Replicas: 32, Seed: seed, Body: chaos.CampaignReplica(chaos.QuickConfig(0))},
	}
}

// RunSweepSuite runs the standard sweeps through the double-run suite
// harness. workers <= 0 uses GOMAXPROCS; clock supplies monotonic
// nanoseconds for the serial-vs-parallel timing (nil records zeros).
func RunSweepSuite(seed uint64, workers int, clock sweep.Clock) (sweep.Suite, error) {
	return sweep.RunSuite(SweepEntries(seed), workers, clock)
}
