package benchsuite

import (
	"encoding/json"
	"fmt"
	"strings"

	"spiderfs/internal/integrity"
	"spiderfs/internal/sim"
	"spiderfs/internal/sweep"
)

// IntegrityEntries returns the E19 sweep: the same storm+failure
// scenario replicated at three scrub pass intervals — off (the exposure
// baseline), the default (which must drive undetected corrupt reads to
// zero), and a deliberately slow interval that loses the race.
func IntegrityEntries(seed uint64) []sweep.Entry {
	base := integrity.DefaultScenario()
	return []sweep.Entry{
		{Label: "e19-scrub-off", Replicas: 8, Seed: seed,
			Body: integrity.E19Replica(base, 0)},
		{Label: "e19-scrub-default", Replicas: 8, Seed: seed,
			Body: integrity.E19Replica(base, integrity.DefaultScrubInterval)},
		{Label: "e19-scrub-slow", Replicas: 8, Seed: seed,
			Body: integrity.E19Replica(base, 30*sim.Minute)},
	}
}

// IntegritySuite is the BENCH_integrity.json artifact: the three E19
// sweep records plus the headline quantities the regression gate pins.
type IntegritySuite struct {
	Schema  string `json:"schema"`
	CPUs    int    `json:"cpus"`
	Workers int    `json:"workers"`

	// DefaultScrubS is the default scrub pass interval in seconds.
	DefaultScrubS float64 `json:"default_scrub_interval_s"`

	// Headline gates, all replica means. UndetectedAtDefault must be
	// exactly zero — the acceptance property of the integrity plane.
	UndetectedAtDefault  float64 `json:"undetected_reads_at_default"`
	UndetectedNoScrub    float64 `json:"undetected_reads_no_scrub"`
	RebuildLatentDefault float64 `json:"rebuild_latent_hits_at_default"`
	RebuildLatentNoScrub float64 `json:"rebuild_latent_hits_no_scrub"`
	LostStripesNoScrub   float64 `json:"lost_stripes_no_scrub"`
	// ScrubOverheadFrac is the foreground read-latency tax of default
	// scrubbing versus no scrubbing (mean_read_ms ratio - 1).
	ScrubOverheadFrac float64 `json:"scrub_overhead_frac"`

	Sweeps []sweep.Record `json:"sweeps"`
}

// RunIntegritySuite runs the E19 sweep through the double-run suite
// harness and derives the headline summary fields.
func RunIntegritySuite(seed uint64, workers int, clock sweep.Clock) (IntegritySuite, error) {
	base, err := sweep.RunSuite(IntegrityEntries(seed), workers, clock)
	if err != nil {
		return IntegritySuite{}, err
	}
	s := IntegritySuite{
		Schema:        "spiderfs-integrity-bench/1",
		CPUs:          base.CPUs,
		Workers:       base.Workers,
		DefaultScrubS: integrity.DefaultScrubInterval.Seconds(),
		Sweeps:        base.Sweeps,
	}
	mean := func(label, metric string) float64 {
		for _, r := range base.Sweeps {
			if r.Label != label {
				continue
			}
			for _, m := range r.Metrics {
				if m.Name == metric {
					return m.Mean
				}
			}
		}
		return 0
	}
	s.UndetectedAtDefault = mean("e19-scrub-default", "undetected_reads")
	s.UndetectedNoScrub = mean("e19-scrub-off", "undetected_reads")
	s.RebuildLatentDefault = mean("e19-scrub-default", "rebuild_latent_hits")
	s.RebuildLatentNoScrub = mean("e19-scrub-off", "rebuild_latent_hits")
	s.LostStripesNoScrub = mean("e19-scrub-off", "lost_stripes")
	if off := mean("e19-scrub-off", "mean_read_ms"); off > 0 {
		s.ScrubOverheadFrac = mean("e19-scrub-default", "mean_read_ms")/off - 1
	}
	return s, nil
}

// Render formats the suite for stdout.
func (s IntegritySuite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "integrity suite (E19): default scrub interval %.0f s, %d workers on %d CPU(s)\n",
		s.DefaultScrubS, s.Workers, s.CPUs)
	fmt.Fprintf(&b, "undetected corrupt reads per replica: %.2f unscrubbed -> %.2f at default\n",
		s.UndetectedNoScrub, s.UndetectedAtDefault)
	fmt.Fprintf(&b, "rebuild latent-error hits per replica: %.2f unscrubbed -> %.2f at default\n",
		s.RebuildLatentNoScrub, s.RebuildLatentDefault)
	fmt.Fprintf(&b, "stripes lost per replica unscrubbed: %.2f; scrub read-latency overhead %.1f%%\n",
		s.LostStripesNoScrub, s.ScrubOverheadFrac*100)
	for _, r := range s.Sweeps {
		fmt.Fprintf(&b, "%s: %d replicas, deterministic=%v, fingerprint %s\n",
			r.Label, r.Replicas, r.Deterministic, r.Fingerprint)
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "  %-24s mean %.4f ± %.4f (95%% CI, n=%d), range [%.4f, %.4f]\n",
				m.Name, m.Mean, m.CI95, m.N, m.Min, m.Max)
		}
	}
	return b.String()
}

// JSON renders the artifact.
func (s IntegritySuite) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
