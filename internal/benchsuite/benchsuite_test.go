package benchsuite

import (
	"strings"
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/lustre"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// tinySweep keeps unit-test event counts small.
func tinySweep() Sweep {
	return Sweep{
		RequestSizes: []int64{64 << 10, 1 << 20},
		QueueDepths:  []int{4},
		WriteFracs:   []float64{0, 1.0},
		Random:       []bool{false, true},
		CellDuration: 300 * sim.Millisecond,
	}
}

func TestBlockLevelSweepShape(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(1)
	g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(), disk.DefaultPopulation(), src.Split("g"))[0]
	cells := RunBlockLevel(eng, g, tinySweep(), src)
	if len(cells) != 2*1*2*2 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(rs int64, wf float64, rnd bool) Cell {
		for _, c := range cells {
			if c.RequestSize == rs && c.WriteFrac == wf && c.Random == rnd {
				return c
			}
		}
		t.Fatalf("cell missing")
		return Cell{}
	}
	// Shape assertions from the paper's characterization:
	// sequential 1M >> random 1M reads.
	seqR := get(1<<20, 0, false)
	rndR := get(1<<20, 0, true)
	if seqR.MBps <= rndR.MBps {
		t.Fatalf("sequential read (%.0f) should beat random (%.0f)", seqR.MBps, rndR.MBps)
	}
	ratio := rndR.MBps / seqR.MBps
	if ratio < 0.1 || ratio > 0.5 {
		t.Fatalf("random/seq read ratio = %.2f", ratio)
	}
	// 1M requests should move more data than 64K at the same depth.
	if get(1<<20, 1, false).MBps <= get(64<<10, 1, false).MBps {
		t.Fatal("large sequential writes should beat small ones")
	}
}

func TestFSLevelSweepAndOverhead(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(2)
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(3))
	g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(), disk.DefaultPopulation(), src.Split("g"))[0]

	sweep := tinySweep()
	block := RunBlockLevel(eng, g, sweep, src.Split("b"))
	fsCells := RunFSLevel(fs, sweep, src.Split("f"))
	if len(fsCells) != len(block) {
		t.Fatalf("fs cells %d vs block %d", len(fsCells), len(block))
	}
	over := CompareLevels(block, fsCells)
	if len(over) == 0 {
		t.Fatal("no overhead rows matched")
	}
	// The FS stack should cost something on small sequential writes
	// (per-RPC software overheads) — and overhead must be sane (> -1).
	for _, o := range over {
		if o.Frac < -3 || o.Frac > 1 {
			t.Fatalf("overhead %s = %.2f implausible", o.Cell, o.Frac)
		}
	}
}

func TestCellKeyAndRender(t *testing.T) {
	c := Cell{RequestSize: 1 << 20, QueueDepth: 4, WriteFrac: 0.6, Random: true, MBps: 123}
	if c.Key() != "1M-qd4-w60%-rnd" {
		t.Fatalf("key = %q", c.Key())
	}
	out := Render([]Cell{c})
	if !strings.Contains(out, "1M-qd4-w60%-rnd") || !strings.Contains(out, "123") {
		t.Fatalf("render = %q", out)
	}
}

func TestCompareLevelsSkipsUnmatched(t *testing.T) {
	block := []Cell{{RequestSize: 1 << 20, QueueDepth: 4, WriteFrac: 1, MBps: 100}}
	fs := []Cell{{RequestSize: 64 << 10, QueueDepth: 4, WriteFrac: 1, MBps: 50}}
	if got := CompareLevels(block, fs); len(got) != 0 {
		t.Fatalf("unmatched cells compared: %v", got)
	}
}
