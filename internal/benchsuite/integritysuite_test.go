package benchsuite

import (
	"testing"
)

// TestIntegritySuiteDeterministic runs the full E19 suite (the harness
// itself double-runs each sweep serially and in parallel) and checks
// the headline acceptance properties the regression gate pins: zero
// undetected corrupt reads at the default interval, a nonzero exposure
// baseline without scrubbing, and reproducible artifact fingerprints.
func TestIntegritySuiteDeterministic(t *testing.T) {
	a, err := RunIntegritySuite(42, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sweeps) != 3 {
		t.Fatalf("%d sweeps, want e19 off/default/slow", len(a.Sweeps))
	}
	for _, r := range a.Sweeps {
		if !r.Deterministic {
			t.Errorf("%s: serial and parallel runs diverged", r.Label)
		}
		if r.Errors != 0 {
			t.Errorf("%s: %d failed replicas", r.Label, r.Errors)
		}
	}
	if a.UndetectedAtDefault != 0 {
		t.Fatalf("undetected at default interval = %v, want exactly 0", a.UndetectedAtDefault)
	}
	if a.UndetectedNoScrub <= 0 {
		t.Fatalf("no-scrub exposure baseline = %v, want positive", a.UndetectedNoScrub)
	}
	if a.RebuildLatentNoScrub <= a.RebuildLatentDefault {
		t.Fatalf("rebuild latent hits: no-scrub %v not above default %v",
			a.RebuildLatentNoScrub, a.RebuildLatentDefault)
	}
	if a.ScrubOverheadFrac <= 0 || a.ScrubOverheadFrac > 0.25 {
		t.Fatalf("scrub overhead = %v, want measurable and under the 0.25 gate ceiling", a.ScrubOverheadFrac)
	}
	b, err := RunIntegritySuite(42, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sweeps {
		if a.Sweeps[i].Fingerprint != b.Sweeps[i].Fingerprint {
			t.Errorf("%s: fingerprint differs across suite runs: %s vs %s",
				a.Sweeps[i].Label, a.Sweeps[i].Fingerprint, b.Sweeps[i].Fingerprint)
		}
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(aj) == 0 || len(a.Render()) == 0 {
		t.Fatal("empty artifact or render")
	}
}
