package integrity

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/sweep"
)

// E19 scenario: one RAID-6 group under a foreground reader, rate-driven
// media wear, a scripted bit-rot storm, and a mid-run disk failure with
// rebuild — with the scrub pass interval as the experiment's axis. Off
// (0) shows the exposure the paper warns about: silent corruption
// served to readers, and rebuilds tripping over latent errors. The
// default interval must drive undetected corrupt reads to zero.

// ScenarioConfig parameterizes one E19 replica.
type ScenarioConfig struct {
	Seed     uint64
	Duration sim.Time

	// Array under test: Geometry over DiskCapacity members (small, so
	// replicas stay cheap in event count).
	DiskCapacity int64
	Geometry     raid.GroupConfig
	Verify       raid.VerifyPolicy

	// Rate-driven media-error injection, armed on every member.
	Faults disk.FaultConfig
	// Scripted bit-rot storm: StormDefects silent sectors sprayed
	// uniformly across the members at StormAt.
	StormAt      sim.Time
	StormDefects int

	// Foreground reader: one ReadSize read at a random stripe-aligned
	// offset every ReadEvery.
	ReadEvery sim.Time
	ReadSize  int64

	// Mid-run member failure and rebuild (0 FailAt disables).
	FailAt       sim.Time
	ReplaceAfter sim.Time
	RebuildChunk int64
	RebuildPause sim.Time

	// Scrub throttle; ScrubEvery is the pass interval and the E19 axis
	// (0 disables scrubbing entirely).
	ScrubEvery sim.Time
	ScrubBatch int64
	ScrubPause sim.Time
}

// DefaultScenario returns the E19 baseline: a 64 MiB-per-member 8+2
// group read once a minute for four hours, a 40-sector bit-rot storm at
// t=30 min, a member failure at t=2 h, and the default scrub throttle.
func DefaultScenario() ScenarioConfig {
	return ScenarioConfig{
		Seed:         1,
		Duration:     4 * sim.Hour,
		DiskCapacity: 64 << 20,
		Geometry:     raid.Spider2Group(),
		Verify:       raid.VerifyOnSuspect,
		Faults:       disk.FaultConfig{UREPerGBRead: 0.02},
		// Offset from the reader's minute cadence: the storm lands 7 s
		// after a read, so the scrubber gets a full interval+pass of
		// lead time before the next read can touch fresh corruption.
		StormAt:      30*sim.Minute + 7*sim.Second,
		StormDefects: 40,
		ReadEvery:    sim.Minute,
		ReadSize:     1 << 20,
		FailAt:       2 * sim.Hour,
		ReplaceAfter: 5 * sim.Minute,
		RebuildChunk: 64,
		RebuildPause: 2 * sim.Second,
		ScrubEvery:   DefaultScrubInterval,
		ScrubBatch:   256,
		ScrubPause:   500 * sim.Millisecond,
	}
}

// ScenarioResult is one replica's outcome.
type ScenarioResult struct {
	Reads           uint64
	EIOReads        uint64
	UndetectedReads uint64
	RepairedChunks  uint64
	ScrubRepairs    uint64
	UREsDetected    uint64
	Mismatches      uint64
	LostStripes     int64
	ScrubPasses     int
	ScrubbedStripes int64
	RebuildHits     uint64   // latent errors hit while the rebuild ran
	RebuildWindow   sim.Time // failure-to-rebuilt exposure window
	MeanReadMs      float64  // foreground read latency (scrub overhead shows here)
}

// RunScenario executes one E19 replica. Two runs of the same config are
// bit-identical; all randomness comes from named splits of cfg.Seed.
func RunScenario(cfg ScenarioConfig) ScenarioResult {
	eng := sim.NewEngine()
	src := rng.New(cfg.Seed)
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = cfg.DiskCapacity
	members := make([]*disk.Disk, cfg.Geometry.Width())
	for i := range members {
		members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split(fmt.Sprintf("disk-%d", i)))
	}
	g := raid.NewGroup(eng, 0, cfg.Geometry, members)
	g.Verify = cfg.Verify
	g.RebuildChunk = cfg.RebuildChunk
	g.RebuildPause = cfg.RebuildPause
	if cfg.Faults.Enabled() {
		for i, d := range members {
			d.SetFaultInjection(cfg.Faults, src.Split(fmt.Sprintf("media-%d", i)))
		}
	}

	if cfg.StormDefects > 0 && cfg.StormAt > 0 {
		storm := src.Split("storm")
		eng.At(cfg.StormAt, func() {
			for i := 0; i < cfg.StormDefects; i++ {
				m := storm.Intn(cfg.Geometry.Width())
				g.Disks()[m].InjectError(storm.Int63n(cfg.DiskCapacity), disk.Silent)
			}
		})
	}

	var res ScenarioResult
	var latSum float64
	stop := false

	reader := src.Split("reader")
	stripes := g.Capacity() / cfg.Geometry.StripeDataSize()
	maxStart := stripes - (cfg.ReadSize+cfg.Geometry.StripeDataSize()-1)/cfg.Geometry.StripeDataSize()
	var tick func()
	tick = func() {
		if stop {
			return
		}
		off := reader.Int63n(maxStart+1) * cfg.Geometry.StripeDataSize()
		issued := eng.Now()
		g.ReadChecked(off, cfg.ReadSize, func(oc raid.ReadOutcome) {
			res.Reads++
			if oc.EIO {
				res.EIOReads++
			}
			latSum += (eng.Now() - issued).Millis()
		})
		eng.After(cfg.ReadEvery, tick)
	}
	eng.After(cfg.ReadEvery, tick)

	if cfg.FailAt > 0 {
		eng.At(cfg.FailAt, func() {
			if g.State() != raid.Healthy {
				return
			}
			g.FailDisk(2)
			eng.After(cfg.ReplaceAfter, func() {
				if g.State() == raid.Failed {
					return
				}
				repl := disk.New(eng, 1000, dcfg, disk.Nominal(), src.Split("repl"))
				if cfg.Faults.Enabled() {
					repl.SetFaultInjection(cfg.Faults, src.Split("media-repl"))
				}
				start := eng.Now()
				g.StartRebuild(2, repl, func() { res.RebuildWindow = eng.Now() - start })
			})
		})
	}

	var scr *Scrubber
	if cfg.ScrubEvery > 0 {
		scr = New(eng, g, Config{
			BatchStripes: cfg.ScrubBatch,
			BatchPause:   cfg.ScrubPause,
			PassInterval: cfg.ScrubEvery,
		})
		scr.Start()
	}

	eng.RunUntil(cfg.Duration)
	stop = true
	if scr != nil {
		scr.Stop()
	}
	eng.Run() // drain in-flight I/O and any unfinished rebuild

	res.UndetectedReads = g.UndetectedCorruptReads
	res.RepairedChunks = g.RepairedChunks
	res.ScrubRepairs = g.ScrubRepairs
	res.UREsDetected = g.UREsDetected
	res.Mismatches = g.ChecksumMismatches
	res.LostStripes = g.UnrecoverableStripes
	res.ScrubbedStripes = g.ScrubbedStripes
	res.RebuildHits = g.RebuildLatentHits
	if scr != nil {
		res.ScrubPasses = scr.Passes
	}
	if res.Reads > 0 {
		res.MeanReadMs = latSum / float64(res.Reads)
	}
	return res
}

// E19Replica returns a sweep body running the scenario with the given
// scrub pass interval (0 = scrubbing off), one fresh seed per replica.
func E19Replica(base ScenarioConfig, scrubEvery sim.Time) sweep.Body {
	return func(r *sweep.Rep) error {
		cfg := base
		cfg.Seed = r.Seed
		cfg.ScrubEvery = scrubEvery
		res := RunScenario(cfg)
		r.Record("reads", float64(res.Reads))
		r.Record("undetected_reads", float64(res.UndetectedReads))
		r.Record("repaired_chunks", float64(res.RepairedChunks))
		r.Record("scrub_repairs", float64(res.ScrubRepairs))
		r.Record("ures_detected", float64(res.UREsDetected))
		r.Record("mismatches", float64(res.Mismatches))
		r.Record("lost_stripes", float64(res.LostStripes))
		r.Record("rebuild_latent_hits", float64(res.RebuildHits))
		r.Record("rebuild_window_s", res.RebuildWindow.Seconds())
		r.Record("scrub_passes", float64(res.ScrubPasses))
		r.Record("mean_read_ms", res.MeanReadMs)
		r.Record("eio_reads", float64(res.EIOReads))
		return nil
	}
}
