package integrity

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func scrubGroup(t *testing.T, seed uint64) (*sim.Engine, *raid.Group) {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(seed)
	cfg := raid.Spider2Group()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
	}
	return eng, raid.NewGroup(eng, 0, cfg, members)
}

func TestScrubberPassesWrapAndRepair(t *testing.T) {
	eng, g := scrubGroup(t, 31)
	// Plant silent defects the first pass must find.
	src := rng.New(9).Split("defects")
	for i := 0; i < 10; i++ {
		m := src.Intn(10)
		g.Disks()[m].InjectError(src.Int63n(64<<20), disk.Silent)
	}
	planted := 0
	for _, d := range g.Disks() {
		planted += d.CorruptSectors()
	}
	s := New(eng, g, Config{BatchStripes: 128, BatchPause: sim.Second, PassInterval: sim.Minute})
	s.Start()
	if !s.Running() {
		t.Fatal("Start did not arm the scrubber")
	}
	s.Start() // idempotent
	eng.RunFor(10 * sim.Minute)
	s.Stop()
	eng.Run()
	if s.Passes < 2 {
		t.Fatalf("Passes = %d, want multiple full-device passes in 10 min", s.Passes)
	}
	if s.Repairs != planted {
		t.Fatalf("Repairs = %d, want the %d planted defects healed", s.Repairs, planted)
	}
	if s.ScannedStripes < g.TotalStripes()*2 {
		t.Fatalf("ScannedStripes = %d over %d passes", s.ScannedStripes, s.Passes)
	}
	for _, d := range g.Disks() {
		if d.CorruptSectors() != 0 {
			t.Fatal("scrubbed array still holds corrupt sectors")
		}
	}
}

func TestScrubberStopCancelsPendingBatch(t *testing.T) {
	eng, g := scrubGroup(t, 32)
	s := New(eng, g, Config{BatchStripes: 64, BatchPause: sim.Minute, PassInterval: sim.Hour})
	s.Start()
	eng.RunFor(10 * sim.Second) // first batch done, next is pending
	scanned := s.ScannedStripes
	if scanned == 0 {
		t.Fatal("no stripes scanned before Stop")
	}
	s.Stop()
	if s.Running() {
		t.Fatal("Stop left the scrubber running")
	}
	eng.RunFor(10 * sim.Minute)
	if s.ScannedStripes != scanned {
		t.Fatalf("scrubber kept scanning after Stop: %d -> %d", scanned, s.ScannedStripes)
	}
}

func TestScrubberHaltsOnGroupFailure(t *testing.T) {
	eng, g := scrubGroup(t, 33)
	s := New(eng, g, Config{BatchStripes: 64, BatchPause: sim.Second, PassInterval: sim.Second})
	s.Start()
	eng.RunFor(5 * sim.Second)
	g.FailDisk(0)
	g.FailDisk(1)
	g.FailDisk(2) // group failed
	eng.RunFor(10 * sim.Minute)
	if s.Running() {
		t.Fatal("scrubber still armed over a failed group")
	}
}

// TestScrubberEscalateHook plants more defects on one stripe than
// parity can absorb and checks that the escalation hook reports
// exactly what the Lost counter records — the operations-ledger tap.
func TestScrubberEscalateHook(t *testing.T) {
	eng, g := scrubGroup(t, 35)
	// Three silent defects on the same stripe of a RAID-6 group: one
	// beyond the two parity can reconstruct.
	stripe := int64(100)
	for _, m := range []int{2, 4, 6} {
		g.Disks()[m].InjectError(stripe*g.Config().ChunkSize, disk.Silent)
	}
	s := New(eng, g, Config{BatchStripes: 512, BatchPause: sim.Second, PassInterval: sim.Hour})
	escalated := 0
	calls := 0
	s.Escalate = func(lost int) {
		if lost <= 0 {
			t.Fatalf("Escalate called with lost=%d", lost)
		}
		escalated += lost
		calls++
	}
	s.Start()
	eng.RunFor(sim.Minute)
	s.Stop()
	eng.Run()
	if s.Lost == 0 {
		t.Fatal("planted triple-defect stripe was not escalated")
	}
	if escalated != s.Lost {
		t.Fatalf("hook saw %d lost stripes across %d calls, counter says %d", escalated, calls, s.Lost)
	}
}

func TestScrubberCountsRebuildOverlaps(t *testing.T) {
	eng, g := scrubGroup(t, 34)
	g.RebuildChunk = 8
	g.RebuildPause = 10 * sim.Second
	g.FailDisk(3)
	// Latent URE on a survivor: the scrub finds it mid-rebuild.
	g.Disks()[5].InjectError(100*g.Config().ChunkSize, disk.URE)
	repl := disk.New(eng, 99, g.Disks()[0].Config(), disk.Nominal(), rng.New(4).Split("r"))
	g.StartRebuild(3, repl, nil)
	s := New(eng, g, Config{BatchStripes: 512, BatchPause: sim.Second, PassInterval: sim.Hour})
	s.Start()
	eng.RunFor(5 * sim.Second)
	if s.RebuildOverlaps == 0 || s.Repairs == 0 {
		t.Fatalf("overlaps/repairs = %d/%d, want scrub-during-rebuild defect counted",
			s.RebuildOverlaps, s.Repairs)
	}
	s.Stop()
	eng.Run()
}

// TestE19ScenarioDeterministic pins the replica contract: same config,
// bit-identical result — including with the scrubber off (stream
// isolation: disabling scrub must not shift any model stream).
func TestE19ScenarioDeterministic(t *testing.T) {
	for _, scrub := range []sim.Time{0, DefaultScrubInterval} {
		cfg := DefaultScenario()
		cfg.Seed = 42
		cfg.ScrubEvery = scrub
		a := RunScenario(cfg)
		b := RunScenario(cfg)
		if a != b {
			t.Fatalf("scrub=%v: double run diverged:\n%+v\n%+v", scrub, a, b)
		}
	}
}

// TestE19ZeroUndetectedAtDefaultInterval pins the headline acceptance
// property: at the default scrub interval the scrubber wins the race
// against foreground reads for every freshly corrupted sector.
func TestE19ZeroUndetectedAtDefaultInterval(t *testing.T) {
	base := DefaultScenario()
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := base
		cfg.Seed = seed
		r := RunScenario(cfg)
		if r.UndetectedReads != 0 {
			t.Fatalf("seed %d: %d undetected corrupt reads at default interval", seed, r.UndetectedReads)
		}
		if r.LostStripes != 0 {
			t.Fatalf("seed %d: %d stripes lost at default interval", seed, r.LostStripes)
		}
		if r.ScrubRepairs == 0 {
			t.Fatalf("seed %d: scrubber repaired nothing — storm not reaching the array?", seed)
		}
	}
}

// TestE19ScrubOffShowsExposure pins the contrast arm: without scrubbing
// the storm's bit rot reaches readers and the rebuild trips latent
// errors — the exposure the experiment quantifies.
func TestE19ScrubOffShowsExposure(t *testing.T) {
	cfg := DefaultScenario()
	cfg.Seed = 3
	cfg.ScrubEvery = 0
	r := RunScenario(cfg)
	if r.UndetectedReads == 0 {
		t.Fatal("scrub-off run served no undetected corrupt reads")
	}
	if r.RebuildHits == 0 {
		t.Fatal("rebuild crossed no latent errors with scrubbing off")
	}
	if r.ScrubPasses != 0 || r.ScrubRepairs != 0 {
		t.Fatalf("scrub-off run scrubbed: passes=%d repairs=%d", r.ScrubPasses, r.ScrubRepairs)
	}
	if r.RebuildWindow <= 0 {
		t.Fatalf("RebuildWindow = %v, want positive exposure window", r.RebuildWindow)
	}
}
