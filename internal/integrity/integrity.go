// Package integrity is the background data-integrity plane: a throttled
// scrubber that walks RAID stripes, repairs what parity can reconstruct,
// and escalates what it cannot — plus the E19 experiment scenario that
// measures what the scrubber buys (undetected-corrupt-read probability,
// rebuild-window exposure to latent errors).
//
// The paper's §IV-E lesson is that the dangerous errors are the latent
// ones: a sector that rotted months ago is harmless until a 2 TB rebuild
// reads it with parity margin already spent. Scrubbing trades a steady
// background I/O tax for finding those sectors while parity can still
// fix them. The scrubber uses the same batch+pause throttle shape as
// raid.Group rebuilds, so its foreground impact is bounded the same way.
//
// Determinism: the scrubber draws no randomness at all — its schedule
// is purely engine-driven, so enabling it never perturbs any model
// stream. All injected corruption (rate-driven or scripted) draws from
// dedicated rng.Split streams owned by the disk layer.
package integrity

import (
	"spiderfs/internal/raid"
	"spiderfs/internal/sim"
)

// Config throttles a Scrubber.
type Config struct {
	// BatchStripes is the number of stripes verified per batch; each
	// batch is one sequential read of the range on every online member.
	BatchStripes int64
	// BatchPause is inserted between batches — the foreground-impact
	// throttle, exactly like raid.Group.RebuildPause.
	BatchPause sim.Time
	// PassInterval is the idle gap between the end of one full-device
	// pass and the start of the next.
	PassInterval sim.Time
}

// DefaultConfig returns the scrub throttle used by the E19 experiment's
// default point.
func DefaultConfig() Config {
	return Config{
		BatchStripes: 128,
		BatchPause:   500 * sim.Millisecond,
		PassInterval: DefaultScrubInterval,
	}
}

// DefaultScrubInterval is the default gap between scrub passes. It is
// deliberately tight relative to the E19 scenario's read rate: at the
// default interval the scrubber must win the race against foreground
// reads for every freshly corrupted sector (zero undetected corrupt
// reads), which is the property the regression gate pins.
const DefaultScrubInterval = 30 * sim.Second

// Scrubber walks one group's stripes in the background. Create with
// New, arm with Start; it runs until Stop, group failure, or engine
// drain.
type Scrubber struct {
	eng     *sim.Engine
	g       *raid.Group
	cfg     Config
	next    int64 // next stripe to scrub
	ev      *sim.Event
	running bool

	// Escalate, when set, is invoked once per scrub batch that found
	// stripes beyond parity, with the count of stripes this batch
	// escalated as unrecoverable — the operations-ledger tap. The hook
	// runs at the engine's current time, is never called with zero, and
	// draws no randomness, so wiring it preserves the scrubber's
	// perturbation-free contract.
	Escalate func(lost int)

	// Counters.
	Passes          int   // full-device passes completed
	ScannedStripes  int64 // stripes verified
	Repairs         int   // chunks reconstructed and rewritten
	Lost            int   // stripes escalated as unrecoverable
	RebuildOverlaps int   // batches that hit defects while a rebuild ran
}

// New builds a scrubber over g. Zero config fields fall back to
// DefaultConfig values.
func New(eng *sim.Engine, g *raid.Group, cfg Config) *Scrubber {
	def := DefaultConfig()
	if cfg.BatchStripes <= 0 {
		cfg.BatchStripes = def.BatchStripes
	}
	if cfg.BatchPause <= 0 {
		cfg.BatchPause = def.BatchPause
	}
	if cfg.PassInterval <= 0 {
		cfg.PassInterval = def.PassInterval
	}
	return &Scrubber{eng: eng, g: g, cfg: cfg}
}

// Group returns the group being scrubbed.
func (s *Scrubber) Group() *raid.Group { return s.g }

// Running reports whether the scrubber is armed.
func (s *Scrubber) Running() bool { return s.running }

// Start arms the scrubber; the first batch issues immediately.
func (s *Scrubber) Start() {
	if s.running {
		return
	}
	s.running = true
	s.batch()
}

// Stop disarms the scrubber, cancelling any pending batch.
func (s *Scrubber) Stop() {
	s.running = false
	if s.ev != nil {
		s.ev.Cancel()
		s.ev = nil
	}
}

func (s *Scrubber) batch() {
	s.ev = nil
	if !s.running {
		return
	}
	if s.g.State() == raid.Failed {
		// Nothing left to protect: the group is gone.
		s.running = false
		return
	}
	s.g.ScrubStripes(s.next, s.cfg.BatchStripes, func(res raid.ScrubResult) {
		if !s.running {
			return
		}
		s.ScannedStripes += res.Scanned
		s.Repairs += res.Repaired
		s.Lost += res.Lost
		if res.Lost > 0 && s.Escalate != nil {
			s.Escalate(res.Lost)
		}
		if res.Rebuilding && (res.Repaired > 0 || res.Lost > 0) {
			// Scrub-found defect with a rebuild in flight: the paper's
			// double-failure window, seen from the scrubber's side.
			s.RebuildOverlaps++
		}
		s.next += res.Scanned
		pause := s.cfg.BatchPause
		if s.next >= s.g.TotalStripes() {
			s.next = 0
			s.Passes++
			pause = s.cfg.PassInterval
		}
		s.ev = s.eng.After(pause, s.batch)
	})
}
