module spiderfs

go 1.22
