// Ablation benchmarks for the design choices and direct-funded Lustre
// features DESIGN.md calls out: the §IV-D product extensions
// (high-performance journaling, imperative recovery, asymmetric router
// notification), the DNE metadata recommendation, and the striping best
// practices of §VII.
package spiderfs_test

import (
	"fmt"
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
	"spiderfs/internal/topology"
	"spiderfs/internal/workload"
)

// --- A1: high-performance Lustre journaling (§IV-D) ---

func journalThroughput(mode lustre.JournalMode) float64 {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(2100))
	for _, ost := range fs.OSTs {
		ost.Journal = mode
	}
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var file *lustre.File
	fs.Create("j/data", 4, func(f *lustre.File) { file = f })
	eng.Run()
	start := eng.Now()
	total := int64(128 << 20)
	client.WriteStream(file, total, 1<<20, nil)
	eng.Run()
	return float64(total) / (eng.Now() - start).Seconds() / 1e6
}

func BenchmarkAblationJournaling(b *testing.B) {
	var hp, sync float64
	for i := 0; i < b.N; i++ {
		hp = journalThroughput(lustre.HPJournal)
		sync = journalThroughput(lustre.SyncJournal)
	}
	printOnce("A1 ablation: high-performance journaling (paper Sec. IV-D)", fmt.Sprintf(
		"sustained write: sync journal %.0f MB/s -> async (funded) %.0f MB/s = %.2fx\n",
		sync, hp, hp/sync))
	b.ReportMetric(hp/sync, "hp/sync")
}

// --- A2: imperative recovery (§IV-D) ---

func recoveryStall(imperative bool) sim.Time {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(2200))
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var file *lustre.File
	fs.CreateOn("app/out", []int{0}, func(f *lustre.File) { file = f })
	eng.Run()
	lustre.FailOSS(fs, 0, lustre.DefaultRecovery(imperative), nil)
	start := eng.Now()
	var doneAt sim.Time
	client.WriteStream(file, 8<<20, 1<<20, func(int64) { doneAt = eng.Now() })
	eng.Run()
	return doneAt - start
}

func BenchmarkAblationImperativeRecovery(b *testing.B) {
	var with, without sim.Time
	for i := 0; i < b.N; i++ {
		without = recoveryStall(false)
		with = recoveryStall(true)
	}
	printOnce("A2 ablation: imperative recovery (paper Sec. IV-D)", fmt.Sprintf(
		"application stall across an OSS failover: %v without IR -> %v with IR (%.1fx shorter)\n",
		without, with, float64(without)/float64(with)))
	b.ReportMetric(float64(without)/float64(with), "stall-reduction")
}

// --- A3: asymmetric router notification (§IV-D) ---

func arnCompletion(arn bool) (sim.Time, uint64) {
	eng := sim.NewEngine()
	cfg := netsim.Spider2Fabric()
	cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
	pl := topology.PlaceRouters(topology.CabinetGrid{Cols: 5, Rows: 2}, cfg.Torus, 16, 4)
	f := netsim.NewFabric(eng, cfg, pl, 32)
	f.SetNotification(arn)
	src := rng.New(2300)
	// A router dies mid-operation; 24 transfers follow.
	f.FailRouter(0)
	done := 0
	for i := 0; i < 24; i++ {
		c := cfg.Torus.CoordOf((i * 11) % cfg.Torus.Nodes())
		f.StartClientFlow(c, i%32, netsim.RouteFGR, 2e8, src, func() { done++ })
	}
	eng.Run()
	return eng.Now(), f.StalledSends
}

func BenchmarkAblationRouterNotification(b *testing.B) {
	var withT, withoutT sim.Time
	var withS, withoutS uint64
	for i := 0; i < b.N; i++ {
		withoutT, withoutS = arnCompletion(false)
		withT, withS = arnCompletion(true)
	}
	printOnce("A3 ablation: asymmetric router notification (paper Sec. IV-D)", fmt.Sprintf(
		"24 transfers with a dead router: without ARN %v (%d senders stalled on LNET timeouts) -> with ARN %v (%d stalls)\n",
		withoutT, withoutS, withT, withS))
	b.ReportMetric(float64(withoutT)/float64(withT), "completion-speedup")
}

// --- A4: DNE metadata scaling (§IV-C recommendation) ---

func dneStorm(mdts int) sim.Time {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(2400))
	if mdts > 1 {
		fs.EnableDNE(mdts, lustre.Spider2MDS())
	}
	start := eng.Now()
	issued := 0
	var worker func()
	worker = func() {
		if issued >= 4000 {
			return
		}
		i := issued
		issued++
		fs.Create(fmt.Sprintf("dir%03d/f%06d", i%64, i), 1, func(*lustre.File) { worker() })
	}
	for w := 0; w < 64; w++ {
		worker()
	}
	eng.Run()
	return eng.Now() - start
}

func BenchmarkAblationDNE(b *testing.B) {
	var t1, t4 sim.Time
	for i := 0; i < b.N; i++ {
		t1 = dneStorm(1)
		t4 = dneStorm(4)
	}
	printOnce("A4 ablation: DNE metadata sharding (paper Sec. IV-C)", fmt.Sprintf(
		"4,000 creates: 1 MDT %v -> 4 MDTs %v (%.1fx); the paper recommends DNE + multiple namespaces together\n",
		t1, t4, float64(t1)/float64(t4)))
	b.ReportMetric(float64(t1)/float64(t4), "dne-speedup")
}

// --- A5: stripe-count best practice for small files (§VII) ---

func statStorm(stripes int) sim.Time {
	eng := sim.NewEngine()
	p := lustre.TestNamespace()
	p.MDSCfg.Stat = sim.Microsecond // expose the OSS glimpse cost
	p.OSSCfg.Cores = 1
	fs := lustre.Build(eng, p, rng.New(2500))
	var file *lustre.File
	fs.Create("small/f", stripes, func(f *lustre.File) { file = f })
	eng.Run()
	start := eng.Now()
	for i := 0; i < 2000; i++ {
		fs.Stat(file, nil)
	}
	eng.Run()
	return eng.Now() - start
}

func BenchmarkAblationStripeCount(b *testing.B) {
	var s1, s4 sim.Time
	for i := 0; i < b.N; i++ {
		s1 = statStorm(1)
		s4 = statStorm(4)
	}
	printOnce("A5 ablation: small-file stripe count (paper Sec. VII best practices)", fmt.Sprintf(
		"2,000 stats: stripe-1 %v vs stripe-4 %v (%.1fx) — why the paper says to keep small files at stripe count 1\n",
		s1, s4, float64(s4)/float64(s1)))
	b.ReportMetric(float64(s4)/float64(s1), "stripe4/stripe1")
}

// --- A6: transfer alignment best practice (§VII) ---

func alignedWrite(xfer int64) float64 {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(2600))
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var file *lustre.File
	fs.Create("align/f", 1, func(f *lustre.File) { file = f })
	eng.Run()
	start := eng.Now()
	total := int64(64 << 20)
	client.WriteStream(file, total, xfer, nil)
	eng.Run()
	return float64(total) / (eng.Now() - start).Seconds() / 1e6
}

// --- A7: "don't build code on Lustre" (§VII user behaviour) ---

func compileProbe(withCompile bool) sim.Time {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(2700))
	if withCompile {
		workload.RunCompile(fs, workload.CompileConfig{
			SourceFiles: 3000, StatsPerFile: 8, Parallelism: 32,
		}, nil)
	}
	var mean sim.Time
	workload.MetadataLatencyProbe(fs, "user/data", 50, func(m sim.Time) { mean = m })
	eng.Run()
	return mean
}

func BenchmarkAblationCompileOnScratch(b *testing.B) {
	var quiet, busy sim.Time
	for i := 0; i < b.N; i++ {
		quiet = compileProbe(false)
		busy = compileProbe(true)
	}
	printOnce("A7 ablation: building code on the scratch FS (paper Sec. VII)", fmt.Sprintf(
		"another user's mean stat latency: %v quiet -> %v during a make -j32 (%.0fx) — why the paper tells users not to compile on Lustre\n",
		quiet, busy, float64(busy)/float64(quiet)))
	b.ReportMetric(float64(busy)/float64(quiet), "latency-inflation")
}

// --- A8: IOSI-driven burst scheduling (§VI-B / Lesson 18) ---

func staggerP95(offset sim.Time) float64 {
	eng := sim.NewEngine()
	p := lustre.TestNamespace()
	p.CtrlCfg.Bps = 2.5e9
	p.CtrlCfg.Slots = 8
	fs := lustre.Build(eng, p, rng.New(2800))
	var durations []float64
	app := func(id int, start sim.Time) {
		client := lustre.NewClient(id, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		period := 2 * sim.Second
		fs.Create(fmt.Sprintf("app%d/ckpt", id), 4, func(file *lustre.File) {
			var dump func(n int)
			dump = func(n int) {
				if n == 0 {
					return
				}
				t0 := eng.Now()
				client.WriteStream(file, 96<<20, 1<<20, func(int64) {
					durations = append(durations, (eng.Now() - t0).Seconds())
					eng.After(period, func() { dump(n - 1) })
				})
			}
			if eng.Now() >= start {
				dump(5)
			} else {
				eng.At(start, func() { dump(5) })
			}
		})
	}
	app(0, 0)
	app(1, offset)
	eng.Run()
	return stats.Percentile(durations, 0.95)
}

func BenchmarkAblationBurstScheduling(b *testing.B) {
	var aligned, staggered float64
	for i := 0; i < b.N; i++ {
		aligned = staggerP95(0)
		staggered = staggerP95(sim.Second)
	}
	printOnce("A8 ablation: IOSI-driven burst scheduling (paper Sec. VI-B, Lesson 18)", fmt.Sprintf(
		"two periodic checkpointers on one namespace, p95 dump time: aligned %.3fs -> signature-staggered %.3fs (%.1fx)\n",
		aligned, staggered, aligned/staggered))
	b.ReportMetric(aligned/staggered, "stagger-gain")
}

func BenchmarkAblationStripeAlignment(b *testing.B) {
	var aligned, small float64
	for i := 0; i < b.N; i++ {
		aligned = alignedWrite(1 << 20)
		small = alignedWrite(68 << 10) // unaligned 68 KiB requests
	}
	printOnce("A6 ablation: stripe-aligned I/O (paper Sec. VII best practices)", fmt.Sprintf(
		"64 MiB stream: 1 MiB aligned RPCs %.0f MB/s vs 68 KiB RPCs %.0f MB/s (%.1fx)\n",
		aligned, small, aligned/small))
	b.ReportMetric(aligned/small, "aligned-gain")
}
